package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"sparqlopt/internal/obs"
	"sparqlopt/internal/opt"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/resilience"
	"sparqlopt/internal/resilience/faultinject"
	"sparqlopt/internal/sparql"
)

func resilienceFixture(t *testing.T) (*Engine, *opt.Result, *sparql.Query) {
	t.Helper()
	ds := socialDataset()
	q := sparql.MustParse(`SELECT * WHERE { ?a <worksFor> ?o . ?b <worksFor> ?o . ?a <knows> ?b . ?o <inCity> ?c . }`)
	m := partition.HashSO{}
	placement, err := m.Partition(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := New(ds.Dict, placement)
	return e, optimizeFor(t, ds, q, m, opt.TDCMD), q
}

// A panic on a per-node worker goroutine must fail the query with a
// typed error carrying the stack — and must not crash the process.
// This pins the engine's panic-isolation contract.
func TestEnginePanicIsolatedPerNode(t *testing.T) {
	e, res, q := resilienceFixture(t)
	r := obs.NewRegistry()
	e.SetInstruments(NewInstruments(r))
	faults := faultinject.New(1)
	faults.Arm(faultinject.EnginePanic, 1)
	_, err := e.ExecuteEnv(context.Background(), res.Plan, q, ExecEnv{Faults: faults})
	var pe *resilience.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *resilience.PanicError", err, err)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic stack not captured")
	}
	if _, ok := pe.Value.(faultinject.Injected); !ok {
		t.Fatalf("panic value %v (%T), want faultinject.Injected", pe.Value, pe.Value)
	}
	if got := r.Counter("resilience_panics_recovered_total", resilience.PanicsRecoveredHelp).Value(); got < 1 {
		t.Fatalf("resilience_panics_recovered_total = %v, want >= 1", got)
	}
	// The engine must still serve clean queries afterwards.
	if _, err := e.Execute(context.Background(), res.Plan, q); err != nil {
		t.Fatalf("engine poisoned by recovered panic: %v", err)
	}
}

func TestEngineBudgetTrip(t *testing.T) {
	e, res, q := resilienceFixture(t)
	g := resilience.NewBudget(64, 0).NewGauge() // 64 bytes: the first scan trips
	_, err := e.ExecuteEnv(context.Background(), res.Plan, q, ExecEnv{Gauge: g})
	if !errors.Is(err, resilience.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	var be *resilience.BudgetError
	if !errors.As(err, &be) || be.Site == "" {
		t.Fatalf("err = %+v, want *BudgetError with a site", err)
	}
}

func TestEngineBudgetFaultNamesOperator(t *testing.T) {
	e, res, q := resilienceFixture(t)
	faults := faultinject.New(2)
	faults.Arm(faultinject.EngineBudget, 1)
	_, err := e.ExecuteEnv(context.Background(), res.Plan, q, ExecEnv{Faults: faults})
	var be *resilience.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v (%T), want *BudgetError", err, err)
	}
	if be.Site == "" {
		t.Fatal("injected budget trip did not name the operator")
	}
}

func TestEngineSlowFaultStaysCancellable(t *testing.T) {
	e, res, q := resilienceFixture(t)
	faults := faultinject.New(3)
	faults.ArmDelay(faultinject.EngineSlow, 1, 30*time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := e.ExecuteEnv(ctx, res.Plan, q, ExecEnv{Faults: faults})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stalled operator ignored cancellation for %v", elapsed)
	}
}

// A generously budgeted run must behave bit-identically to an
// unbudgeted one, and return every reservation at Reset.
func TestEngineBudgetedRunIdentical(t *testing.T) {
	e, res, q := resilienceFixture(t)
	want, err := e.Execute(context.Background(), res.Plan, q)
	if err != nil {
		t.Fatal(err)
	}
	b := resilience.NewBudget(1<<30, 1<<30)
	g := b.NewGauge()
	got, err := e.ExecuteEnv(context.Background(), res.Plan, q, ExecEnv{Gauge: g})
	if err != nil {
		t.Fatal(err)
	}
	equalResults(t, got, want, "budgeted")
	if g.Used() == 0 {
		t.Fatal("gauge charged nothing — engine accounting not wired")
	}
	g.Reset()
	if b.Used() != 0 {
		t.Fatalf("budget still holds %d bytes after Reset", b.Used())
	}
}
