package engine

import (
	"context"
	"testing"

	"sparqlopt/internal/cost"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/plan"
	"sparqlopt/internal/rdf"
	"sparqlopt/internal/sparql"
	"sparqlopt/internal/stats"
)

// buildPlan hand-assembles a plan over a query with real stats.
func handPlan(t *testing.T, ds *rdf.Dataset, q *sparql.Query, build func(scan func(i int) *plan.Node) *plan.Node) *plan.Node {
	t.Helper()
	st, err := stats.Collect(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	scan := func(i int) *plan.Node {
		return plan.NewScan(i, st.Patterns[i].Card, cost.Default)
	}
	p := build(scan)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestBroadcastEqualsRepartition: the two distributed join algorithms
// must produce identical answers for the same logical join.
func TestBroadcastEqualsRepartition(t *testing.T) {
	ds := socialDataset()
	q := sparql.MustParse(`SELECT * WHERE { ?a <knows> ?b . ?b <worksFor> ?o . }`)
	placement, err := partition.HashSO{}.Partition(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	e := New(ds.Dict, placement)
	want, err := Reference(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []plan.Algorithm{plan.BroadcastJoin, plan.RepartitionJoin} {
		p := handPlan(t, ds, q, func(scan func(int) *plan.Node) *plan.Node {
			return plan.NewJoin(alg, "b", []*plan.Node{scan(0), scan(1)}, 5, cost.Default)
		})
		got, err := e.Execute(context.Background(), p, q)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		equalResults(t, got, want, alg.String())
	}
}

// TestMultiwayRepartition: a 3-way repartition join on the shared
// variable answers like the reference.
func TestMultiwayRepartition(t *testing.T) {
	ds := socialDataset()
	q := sparql.MustParse(`SELECT * WHERE { ?a <worksFor> ?o . ?b <worksFor> ?o . ?o <inCity> ?c . }`)
	placement, err := partition.HashSO{}.Partition(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := New(ds.Dict, placement)
	want, err := Reference(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	p := handPlan(t, ds, q, func(scan func(int) *plan.Node) *plan.Node {
		return plan.NewJoin(plan.RepartitionJoin, "o",
			[]*plan.Node{scan(0), scan(1), scan(2)}, 10, cost.Default)
	})
	got, err := e.Execute(context.Background(), p, q)
	if err != nil {
		t.Fatal(err)
	}
	equalResults(t, got, want, "3-way repartition")
}

// TestSingleNodeCluster: everything degenerates gracefully at n = 1.
func TestSingleNodeCluster(t *testing.T) {
	ds := socialDataset()
	q := sparql.MustParse(`SELECT * WHERE { ?a <knows> ?b . ?b <knows> ?c . }`)
	placement, err := partition.PathBMC{}.Partition(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	e := New(ds.Dict, placement)
	if e.Nodes() != 1 {
		t.Fatalf("Nodes = %d", e.Nodes())
	}
	want, err := Reference(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	p := handPlan(t, ds, q, func(scan func(int) *plan.Node) *plan.Node {
		return plan.NewJoin(plan.RepartitionJoin, "b", []*plan.Node{scan(0), scan(1)}, 5, cost.Default)
	})
	got, err := e.Execute(context.Background(), p, q)
	if err != nil {
		t.Fatal(err)
	}
	equalResults(t, got, want, "single node")
	if got.Metrics.TransferredRows != 0 {
		t.Errorf("single-node cluster transferred %d rows", got.Metrics.TransferredRows)
	}
}

// TestMoreNodesThanData: empty fragments must not break anything.
func TestMoreNodesThanData(t *testing.T) {
	ds := rdf.NewDataset()
	ds.Add("a", "p", "b")
	ds.Add("b", "q", "c")
	q := sparql.MustParse(`SELECT * WHERE { ?x <p> ?y . ?y <q> ?z . }`)
	placement, err := partition.HashSO{}.Partition(ds, 16)
	if err != nil {
		t.Fatal(err)
	}
	e := New(ds.Dict, placement)
	p := handPlan(t, ds, q, func(scan func(int) *plan.Node) *plan.Node {
		return plan.NewJoin(plan.BroadcastJoin, "y", []*plan.Node{scan(0), scan(1)}, 1, cost.Default)
	})
	got, err := e.Execute(context.Background(), p, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 1 {
		t.Errorf("got %d rows, want 1", len(got.Rows))
	}
}

// TestRepartitionMissingVariable: executing a plan whose repartition
// variable is absent from an input is an error, not a panic.
func TestRepartitionMissingVariable(t *testing.T) {
	ds := socialDataset()
	q := sparql.MustParse(`SELECT * WHERE { ?a <knows> ?b . ?b <worksFor> ?o . }`)
	placement, _ := partition.HashSO{}.Partition(ds, 2)
	e := New(ds.Dict, placement)
	p := handPlan(t, ds, q, func(scan func(int) *plan.Node) *plan.Node {
		return plan.NewJoin(plan.RepartitionJoin, "nonexistent", []*plan.Node{scan(0), scan(1)}, 5, cost.Default)
	})
	if _, err := e.Execute(context.Background(), p, q); err == nil {
		t.Error("missing repartition variable accepted")
	}
}

// TestInvalidPlanRejected: Execute validates its plan first.
func TestInvalidPlanRejected(t *testing.T) {
	ds := socialDataset()
	q := sparql.MustParse(`SELECT * WHERE { ?a <knows> ?b . ?b <worksFor> ?o . }`)
	placement, _ := partition.HashSO{}.Partition(ds, 2)
	e := New(ds.Dict, placement)
	bad := &plan.Node{Set: 3, Alg: plan.LocalJoin} // no children
	if _, err := e.Execute(context.Background(), bad, q); err == nil {
		t.Error("invalid plan accepted")
	}
}

// TestLiteralObjects: literal terms flow through scans and joins.
func TestLiteralObjects(t *testing.T) {
	ds := rdf.NewDataset()
	ds.Add("a", "name", `"Alice"`)
	ds.Add("a", "age", `"30"`)
	ds.Add("b", "name", `"Bob"`)
	q := sparql.MustParse(`SELECT ?n WHERE { ?x <name> ?n . ?x <age> "30" . }`)
	got, err := Reference(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 1 || ds.Dict.Term(got.Rows[0][0]) != `"Alice"` {
		t.Errorf("literal join wrong: %v", got.Rows)
	}
}
