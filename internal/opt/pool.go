package opt

import (
	"sync"

	"sparqlopt/internal/bitset"
)

// pool bounds the enumerator's concurrency at Options.Parallelism
// goroutines: the caller plus up to parallelism−1 spawned workers.
// submit is best-effort — when every worker slot is busy the task runs
// inline on the submitting goroutine. That "always make progress
// yourself" rule is what makes the fork-join recursion deadlock-free:
// a goroutine only ever blocks on a future whose owner is actively
// executing, and ownership chains descend strictly by subquery size,
// so some owner is always runnable.
type pool struct {
	sem     chan struct{}
	batches sync.Pool
}

func newPool(parallelism int) *pool {
	p := &pool{sem: make(chan struct{}, parallelism-1)}
	p.batches.New = func() any { return new(cmdBatch) }
	return p
}

// submit runs fn on a fresh goroutine if a worker slot is free, inline
// otherwise. It returns after fn started (inline) or was handed off.
func (p *pool) submit(fn func()) {
	select {
	case p.sem <- struct{}{}:
		go func() {
			defer func() { <-p.sem }()
			fn()
		}()
	default:
		fn()
	}
}

// cmdBatch carries a window of connected multi-divisions from the
// enumeration goroutine to a costing worker. Parts of all CMDs live in
// one arena slice indexed by offsets, so a batch costs zero
// allocations per CMD once its backing arrays are warm; batches are
// recycled through the pool's sync.Pool (the "pool CMD.Parts slices"
// half of the allocation diet).
type cmdBatch struct {
	vjs   []int          // join variable of CMD i
	offs  []int32        // parts of CMD i are parts[offs[i]:offs[i+1]]
	parts []bitset.TPSet // arena backing every CMD's parts
}

func (b *cmdBatch) reset() {
	b.vjs = b.vjs[:0]
	b.offs = append(b.offs[:0], 0)
	b.parts = b.parts[:0]
}

func (b *cmdBatch) add(cmd CMD) {
	b.vjs = append(b.vjs, cmd.Var)
	b.parts = append(b.parts, cmd.Parts...)
	b.offs = append(b.offs, int32(len(b.parts)))
}

func (b *cmdBatch) len() int { return len(b.vjs) }

// partsOf returns the (arena-backed, read-only) parts of CMD i.
func (b *cmdBatch) partsOf(i int) []bitset.TPSet {
	return b.parts[b.offs[i]:b.offs[i+1]]
}

func (p *pool) getBatch() *cmdBatch {
	b := p.batches.Get().(*cmdBatch)
	b.reset()
	return b
}

func (p *pool) putBatch(b *cmdBatch) { p.batches.Put(b) }
