package opt

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"sparqlopt/internal/bitset"
	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/sparql"
)

// fig1 and fig4 are the paper's running examples (see querygraph tests).
const fig1 = `SELECT * WHERE {
	?b <p1> ?a .
	?c <p2> ?a .
	?a <p3> ?e .
	?e <p4> ?g .
	?b <p5> ?f .
	?c <p6> ?d .
	?a <p7> ?d .
}`

const fig4 = `SELECT * WHERE {
	?v <p> ?w1 .
	?w1 <p> ?x2 .
	?v <p> ?w2 .
	?w2 <p> ?x4 .
	?v ?a ?bv .
	?a ?e8 ?c .
	?c <p> ?x7 .
	?bv ?e8 ?d .
	?d <p> ?v .
}`

func mustJG(t *testing.T, q *sparql.Query) *querygraph.JoinGraph {
	t.Helper()
	jg, err := querygraph.NewJoinGraph(q)
	if err != nil {
		t.Fatal(err)
	}
	return jg
}

// collectCBDs runs Algorithm 2 and returns canonical pairs.
func collectCBDs(jg *querygraph.JoinGraph, q bitset.TPSet, vj int) [][2]bitset.TPSet {
	var out [][2]bitset.TPSet
	ConnBinDivision(jg, q, vj, func(a, b bitset.TPSet) bool {
		out = append(out, [2]bitset.TPSet{a, b})
		return true
	})
	return out
}

func cbdKeySet(t *testing.T, cbds [][2]bitset.TPSet) map[[2]bitset.TPSet]bool {
	t.Helper()
	set := map[[2]bitset.TPSet]bool{}
	for _, c := range cbds {
		if set[c] {
			t.Fatalf("duplicate cbd %v", c)
		}
		set[c] = true
	}
	return set
}

// assertCBDsMatchOracle compares Algorithm 2's output against the
// brute-force oracle on every join variable of q.
func assertCBDsMatchOracle(t *testing.T, jg *querygraph.JoinGraph, q bitset.TPSet) {
	t.Helper()
	for vj := range jg.Vars {
		got := cbdKeySet(t, collectCBDs(jg, q, vj))
		want := map[[2]bitset.TPSet]bool{}
		for _, c := range oracleCBDs(jg, q, vj) {
			want[c] = true
		}
		if len(got) != len(want) {
			t.Errorf("var %s: got %d cbds, oracle has %d", jg.Vars[vj], len(got), len(want))
		}
		for c := range want {
			if !got[c] {
				t.Errorf("var %s: missing cbd (%v, %v)", jg.Vars[vj], c[0], c[1])
			}
		}
		for c := range got {
			if !want[c] {
				t.Errorf("var %s: spurious cbd (%v, %v)", jg.Vars[vj], c[0], c[1])
			}
		}
	}
}

func TestCBDFig1(t *testing.T) {
	jg := mustJG(t, sparql.MustParse(fig1))
	assertCBDsMatchOracle(t, jg, jg.All())
}

func TestCBDFig4(t *testing.T) {
	jg := mustJG(t, sparql.MustParse(fig4))
	assertCBDsMatchOracle(t, jg, jg.All())
	// The paper's Example 6 walks three specific cbds on ?v; check
	// they are among the emitted ones (indexes: tp1..tp9 = 0..8).
	v := jg.VarIndex["v"]
	got := cbdKeySet(t, collectCBDs(jg, jg.All(), v))
	for _, want := range [][2]bitset.TPSet{
		{bitset.Of(0, 1), bitset.Of(2, 3, 4, 5, 6, 7, 8)},
		{bitset.Of(0, 1, 4), bitset.Of(2, 3, 5, 6, 7, 8)},
		{bitset.Of(0, 1, 4, 5, 6), bitset.Of(2, 3, 7, 8)},
	} {
		if !got[want] {
			t.Errorf("cbd (%v, %v) from Example 6 not emitted", want[0], want[1])
		}
	}
}

func TestCBDSubqueries(t *testing.T) {
	// Validate Algorithm 2 on every connected subquery of fig1.
	jg := mustJG(t, sparql.MustParse(fig1))
	jg.All().Subsets(func(sub bitset.TPSet) bool {
		if sub.Len() >= 2 && jg.Connected(sub) {
			assertCBDsMatchOracle(t, jg, sub)
		}
		return true
	})
}

func TestCBDClassicShapes(t *testing.T) {
	for _, tc := range []struct {
		name string
		q    *sparql.Query
	}{
		{"chain5", chainQuery(5)},
		{"cycle5", cycleQuery(5)},
		{"cycle6", cycleQuery(6)},
		{"star5", starQuery(5)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			jg := mustJG(t, tc.q)
			assertCBDsMatchOracle(t, jg, jg.All())
		})
	}
}

func TestCBDStarCount(t *testing.T) {
	// A star with n rays has 2^(n-1) − 1 cbds on its center variable:
	// any proper non-empty subset containing the seed.
	for n := 2; n <= 7; n++ {
		jg := mustJG(t, starQuery(n))
		c := jg.VarIndex["c"]
		got := len(collectCBDs(jg, jg.All(), c))
		want := 1<<(n-1) - 1
		if got != want {
			t.Errorf("star %d: %d cbds, want %d", n, got, want)
		}
	}
}

func TestCBDChainCount(t *testing.T) {
	// A chain has exactly one cbd per interior join variable.
	jg := mustJG(t, chainQuery(6))
	for vj := range jg.Vars {
		if got := len(collectCBDs(jg, jg.All(), vj)); got != 1 {
			t.Errorf("chain var %s: %d cbds, want 1", jg.Vars[vj], got)
		}
	}
}

func TestCBDEarlyStop(t *testing.T) {
	jg := mustJG(t, starQuery(6))
	n := 0
	ConnBinDivision(jg, jg.All(), jg.VarIndex["c"], func(a, b bitset.TPSet) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("emitted %d cbds after early stop", n)
	}
}

func TestCBDDegenerate(t *testing.T) {
	jg := mustJG(t, chainQuery(3))
	// Singleton set, or a variable with fewer than two neighbors in
	// the set: no cbds.
	if got := collectCBDs(jg, bitset.Of(0), 0); len(got) != 0 {
		t.Errorf("singleton emitted %v", got)
	}
	if got := collectCBDs(jg, bitset.Of(0, 1), jg.VarIndex["x2"]); len(got) != 0 {
		t.Errorf("degree-1 variable emitted %v", got)
	}
}

// collectCMDs runs Algorithm 3 and returns canonical keys.
func collectCMDs(t *testing.T, jg *querygraph.JoinGraph, q bitset.TPSet, prune bool) []string {
	t.Helper()
	var out []string
	seen := map[string]bool{}
	ConnMultiDivision(jg, q, prune, func(cmd CMD) bool {
		key := cmdKey(cmd.Parts, cmd.Var)
		if seen[key] {
			t.Fatalf("duplicate cmd %s", key)
		}
		seen[key] = true
		out = append(out, key)
		return true
	})
	return out
}

func assertCMDsMatchOracle(t *testing.T, jg *querygraph.JoinGraph, q bitset.TPSet) {
	t.Helper()
	got := collectCMDs(t, jg, q, false)
	want := oracleCMDs(jg, q)
	sort.Strings(got)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Errorf("got %d cmds, oracle has %d", len(got), len(want))
	}
	for i := 0; i < len(got) && i < len(want); i++ {
		if got[i] != want[i] {
			t.Errorf("cmd mismatch at %d: got %s, want %s", i, got[i], want[i])
			break
		}
	}
}

func TestCMDFig1(t *testing.T) {
	jg := mustJG(t, sparql.MustParse(fig1))
	assertCMDsMatchOracle(t, jg, jg.All())
	// Example 4's two cmds on ?a must be present.
	a := jg.VarIndex["a"]
	all := collectCMDs(t, jg, jg.All(), false)
	set := map[string]bool{}
	for _, k := range all {
		set[k] = true
	}
	ex1 := cmdKey([]bitset.TPSet{bitset.Of(0, 4), bitset.Of(6), bitset.Of(1, 5), bitset.Of(2, 3)}, a)
	ex2 := cmdKey([]bitset.TPSet{bitset.Of(0, 4, 6), bitset.Of(1, 5), bitset.Of(2, 3)}, a)
	if !set[ex1] {
		t.Errorf("Example 4 cmd ({tp1,tp5},{tp7},{tp2,tp6},{tp3,tp4},?a) missing")
	}
	if !set[ex2] {
		t.Errorf("Example 4 cmd ({tp1,tp5,tp7},{tp2,tp6},{tp3,tp4},?a) missing")
	}
}

func TestCMDFig4(t *testing.T) {
	jg := mustJG(t, sparql.MustParse(fig4))
	assertCMDsMatchOracle(t, jg, jg.All())
}

func TestCMDClassicShapes(t *testing.T) {
	for _, tc := range []struct {
		name string
		q    *sparql.Query
	}{
		{"chain6", chainQuery(6)},
		{"cycle6", cycleQuery(6)},
		{"star6", starQuery(6)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			jg := mustJG(t, tc.q)
			assertCMDsMatchOracle(t, jg, jg.All())
		})
	}
}

func TestCMDStarIsBellNumber(t *testing.T) {
	// |D_cmd(star_n)| = B_n − 1 (§III-D).
	bell := []int{1, 1, 2, 5, 15, 52, 203, 877}
	for n := 2; n <= 7; n++ {
		jg := mustJG(t, starQuery(n))
		got := len(collectCMDs(t, jg, jg.All(), false))
		if got != bell[n]-1 {
			t.Errorf("star %d: %d cmds, want B_%d − 1 = %d", n, got, n, bell[n]-1)
		}
	}
}

func TestCMDCycleCount(t *testing.T) {
	// |D_cmd(cycle_n)| = n(n−1) (§III-D).
	for n := 3; n <= 7; n++ {
		jg := mustJG(t, cycleQuery(n))
		got := len(collectCMDs(t, jg, jg.All(), false))
		if got != n*(n-1) {
			t.Errorf("cycle %d: %d cmds, want %d", n, got, n*(n-1))
		}
	}
}

func TestCCMDPruning(t *testing.T) {
	for _, tc := range []struct {
		name string
		q    *sparql.Query
	}{
		{"star5", starQuery(5)},
		{"fig1", sparql.MustParse(fig1)},
		{"fig4", sparql.MustParse(fig4)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			jg := mustJG(t, tc.q)
			got := collectCMDs(t, jg, jg.All(), true)
			want := oracleCCMDs(jg, jg.All())
			sort.Strings(got)
			sort.Strings(want)
			if len(got) != len(want) {
				t.Fatalf("got %d pruned cmds, oracle has %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("mismatch at %d: got %s, want %s", i, got[i], want[i])
				}
			}
		})
	}
}

func TestCCMDStarPrunedCount(t *testing.T) {
	// For a star with n rays, pruned divisions are: binary cbds
	// (2^(n−1) − 1) plus the single all-singletons ccmd... every part
	// must contain exactly one vj-neighbor, and in a star every
	// pattern is a neighbor, so parts are singletons: exactly one ccmd
	// with k = n > 2.
	for n := 3; n <= 7; n++ {
		jg := mustJG(t, starQuery(n))
		got := len(collectCMDs(t, jg, jg.All(), true))
		want := 1<<(n-1) - 1 + 1
		if got != want {
			t.Errorf("star %d pruned: %d, want %d", n, got, want)
		}
	}
}

func TestCMDEarlyStop(t *testing.T) {
	jg := mustJG(t, starQuery(6))
	n := 0
	ConnMultiDivision(jg, jg.All(), false, func(CMD) bool {
		n++
		return n < 4
	})
	if n != 4 {
		t.Errorf("emitted %d cmds after early stop", n)
	}
}

// TestQuickCBDAndCMDRandom cross-checks both enumerators against the
// oracles on random connected queries of every shape.
func TestQuickCBDAndCMDRandom(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 120; trial++ {
		n := 2 + r.Intn(6) // up to 7 patterns keeps the oracle cheap
		q := randomConnectedQuery(r, n)
		jg := mustJG(t, q)
		name := fmt.Sprintf("trial%d_n%d", trial, n)
		t.Run(name, func(t *testing.T) {
			assertCBDsMatchOracle(t, jg, jg.All())
			assertCMDsMatchOracle(t, jg, jg.All())
			// Pruned enumeration matches the ccmd oracle too.
			got := collectCMDs(t, jg, jg.All(), true)
			want := oracleCCMDs(jg, jg.All())
			sort.Strings(got)
			sort.Strings(want)
			if len(got) != len(want) {
				t.Fatalf("pruned: got %d, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("pruned mismatch: got %s, want %s", got[i], want[i])
				}
			}
		})
	}
}

// TestCMDPartsAreValid asserts the structural conditions of
// Definition 3 on everything Algorithm 3 emits for a few shapes.
func TestCMDPartsAreValid(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		q := randomConnectedQuery(r, 2+r.Intn(7))
		jg := mustJG(t, q)
		ConnMultiDivision(jg, jg.All(), false, func(cmd CMD) bool {
			var union bitset.TPSet
			neighbors := jg.Ntp[cmd.Var]
			if len(cmd.Parts) < 2 {
				t.Fatalf("cmd with %d parts", len(cmd.Parts))
			}
			for _, p := range cmd.Parts {
				if union.Overlaps(p) {
					t.Fatalf("overlapping parts in %v", cmd.Parts)
				}
				union = union.Union(p)
				if !jg.Connected(p) {
					t.Fatalf("disconnected part %v", p)
				}
				if !p.Overlaps(neighbors) {
					t.Fatalf("part %v has no %s-neighbor", p, jg.Vars[cmd.Var])
				}
			}
			if union != jg.All() {
				t.Fatalf("parts cover %v, want all", union)
			}
			return true
		})
	}
}
