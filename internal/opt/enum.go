// Package opt implements the paper's core contribution: optimal-
// efficiency enumeration of k-ary bushy query plans.
//
//   - ConnBinDivision is Algorithm 2: it emits every connected
//     binary-division (cbd) of a query on a join variable exactly once,
//     in Θ(|V_T|) amortized time per division (Lemma 6).
//   - ConnMultiDivision is Algorithm 3: it emits every connected
//     multi-division (cmd, Definition 3) exactly once by recursively
//     peeling cbds (Theorem 2), in Θ(|V_T|) amortized time per cmd
//     (Lemma 3).
//   - Optimize is Algorithm 1: memoized top-down join enumeration over
//     cmds (TD-CMD), with the TD-CMDP pruning rules (§IV-A), the
//     HGR-TD-CMD join-graph reduction (§IV-B) and the TD-Auto decision
//     tree (§IV-C) layered on top.
package opt

import (
	"sparqlopt/internal/bitset"
	"sparqlopt/internal/querygraph"
)

// ConnBinDivision enumerates the connected binary-divisions of the
// subquery q on join variable vj (Algorithm 2). For every cbd
// (SQ, q\SQ, v_j) it calls emit(SQ, q\SQ); enumeration stops early if
// emit returns false. The side passed first always contains the
// lowest-indexed pattern of N_tp(v_j) ∩ q, which makes each unordered
// division appear exactly once.
//
// q must be a connected subquery of jg's query.
func ConnBinDivision(jg *querygraph.JoinGraph, q bitset.TPSet, vj int, emit func(sq, rest bitset.TPSet) bool) {
	neighbors := jg.Ntp[vj].Intersect(q)
	if neighbors.Len() < 2 {
		return // both sides need a pattern adjacent to vj
	}
	comps := jg.ComponentsExcluding(q, vj)
	seed := neighbors.Min()

	findComp := func(tp int) bitset.TPSet {
		for _, c := range comps {
			if c.Has(tp) {
				return c
			}
		}
		return 0
	}

	// extension returns the set that must be added to sq together with
	// tp: the whole component when it is indivisible (Lemma 1), or
	// {tp} plus the fall-off parts that contain no vj-neighbor
	// (Lemma 2) when it is divisible.
	extension := func(sq bitset.TPSet, tp int) bitset.TPSet {
		comp := findComp(tp)
		if comp.Intersect(jg.Ntp[vj]).Len() == 1 {
			return comp // indivisible component: take it whole
		}
		rest := comp.Diff(sq).Remove(tp)
		ext := bitset.Single(tp)
		if rest.IsEmpty() {
			return ext
		}
		for _, sub := range jg.ComponentsExcluding(rest, vj) {
			if !sub.Overlaps(neighbors) {
				ext = ext.Union(sub)
			}
		}
		return ext
	}

	// rec extends sq; x holds the frontier patterns already branched on
	// at enclosing levels, whose divisions were enumerated there.
	var rec func(sq, x bitset.TPSet) bool
	rec = func(sq, x bitset.TPSet) bool {
		if !sq.IsEmpty() {
			if !emit(sq, q.Diff(sq)) {
				return false
			}
		}
		var frontier bitset.TPSet
		if sq.IsEmpty() {
			frontier = bitset.Single(seed)
		} else {
			frontier = jg.AdjOf(q, sq).Diff(x)
		}
		cont := true
		frontier.Each(func(tp int) bool {
			ext := extension(sq, tp)
			next := sq.Union(ext)
			// Skip divisions already emitted under an earlier branch
			// (ext pulled in an excluded pattern) and the degenerate
			// full division.
			if !ext.Overlaps(x) && next != q {
				if !rec(next, x) {
					cont = false
					return false
				}
			}
			x = x.Add(tp)
			return true
		})
		return cont
	}
	rec(0, 0)
}

// CMD is one connected multi-division (Definition 3): a partition of a
// subquery into k ≥ 2 connected parts, each containing a pattern
// adjacent to the common join variable Var.
type CMD struct {
	// Parts are the k subqueries SQ_1 ... SQ_k.
	Parts []bitset.TPSet
	// Var is the index of the join variable v_j in the join graph.
	Var int
}

// ConnMultiDivision enumerates the connected multi-divisions of the
// subquery q (Algorithm 3), calling emit once per cmd; enumeration
// stops early if emit returns false. The Parts slice passed to emit is
// reused across calls — copy it to retain.
//
// When pruneCCMD is true, only binary divisions and connected
// complete-multi-divisions (ccmds — every part contains exactly one
// vj-neighbor) are emitted, implementing Rule 1 of TD-CMDP.
func ConnMultiDivision(jg *querygraph.JoinGraph, q bitset.TPSet, pruneCCMD bool, emit func(cmd CMD) bool) {
	if q.Len() < 2 {
		return
	}
	parts := make([]bitset.TPSet, 0, q.Len())
	for vj := range jg.Vars {
		neighbors := jg.Ntp[vj].Intersect(q)
		if neighbors.Len() < 2 {
			continue
		}
		single := func(s bitset.TPSet) bool { return s.Intersect(neighbors).Len() == 1 }

		// rec peels cbds of rest on vj, accumulating peeled parts.
		// allSingle tracks whether every accumulated part has exactly
		// one vj-neighbor (required of k>2 divisions under pruning).
		var rec func(rest bitset.TPSet, allSingle bool) bool
		rec = func(rest bitset.TPSet, allSingle bool) bool {
			if len(parts) > 0 {
				valid := len(parts) == 1 || !pruneCCMD || (allSingle && single(rest))
				if valid {
					parts = append(parts, rest)
					ok := emit(CMD{Parts: parts, Var: vj})
					parts = parts[:len(parts)-1]
					if !ok {
						return false
					}
				}
			}
			if single(rest) {
				return true
			}
			cont := true
			ConnBinDivision(jg, rest, vj, func(a, b bitset.TPSet) bool {
				if pruneCCMD && len(parts) >= 1 && !(allSingle && single(a)) {
					// Deeper splits would only yield non-ccmd k>2
					// divisions; prune the branch but keep scanning
					// sibling cbds.
					return true
				}
				parts = append(parts, a)
				cont = rec(b, allSingle && single(a))
				parts = parts[:len(parts)-1]
				return cont
			})
			return cont
		}
		if !rec(q, true) {
			return
		}
	}
}
