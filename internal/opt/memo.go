package opt

import (
	"sync"

	"sparqlopt/internal/bitset"
	"sparqlopt/internal/plan"
	"sparqlopt/internal/resilience"
	"sparqlopt/internal/resilience/faultinject"
)

// memoEntryBytes approximates the resident cost of one memo entry: the
// map slot, the future, and the plan node the entry pins. The figure
// is deliberately round — the budget tracks growth, not bytes-exact
// heap usage — but it scales with the real driver of optimizer memory,
// the number of distinct subqueries memoized (exponential in query
// size for TD-CMD).
const memoEntryBytes = 192

// chargeMemoEntry reserves one memo entry against the query's budget
// before the entry is published. On a trip (or an injected OptBudget
// fault) it fails the run with the typed error and reports false; the
// caller skips the insert and unwinds.
func (sp *space) chargeMemoEntry() bool {
	if sp.faults.Should(faultinject.OptBudget) {
		sp.fail(&resilience.BudgetError{Site: "memo", Requested: memoEntryBytes,
			Used: sp.memoCharged.Load(), Limit: sp.memoCharged.Load()})
		return false
	}
	if sp.gauge == nil {
		return true
	}
	if err := sp.gauge.Reserve("memo", memoEntryBytes); err != nil {
		sp.fail(err)
		return false
	}
	sp.memoCharged.Add(memoEntryBytes)
	return true
}

// releaseMemo returns every memo reservation of this run: the memo is
// dropped when enumeration ends, win or lose.
func (sp *space) releaseMemo() {
	if n := sp.memoCharged.Swap(0); n > 0 {
		sp.gauge.Release(n)
	}
}

// The parallel enumerator replaces the sequential plain-map memo with
// a lock-striped table of plan futures. Each distinct subquery is
// planned by exactly one worker: the first goroutine to claim a set
// becomes its owner and computes the plan; later claimants receive the
// same future and block on its completion. This keeps the search-space
// counters (and the amount of work) identical to the sequential run —
// no subquery is ever planned twice — while letting independent
// subqueries proceed on different cores.

// memoShards is the number of lock stripes. 64 keeps the probability
// of two live workers hashing to the same stripe low at any supported
// parallelism while the table stays small enough to allocate per run.
const memoShards = 64

// futurePlan is the promise for one subquery's best plan. done is
// closed by the owner after plan is written, so waiters observe a
// fully published value. plan is nil when the run was cancelled
// mid-computation (the run as a whole errors out in that case).
type futurePlan struct {
	done chan struct{}
	plan *plan.Node
}

// memoTable is the sharded future-based memo keyed by subquery bitset.
type memoTable struct {
	shards [memoShards]memoShard
}

type memoShard struct {
	mu sync.Mutex
	m  map[bitset.TPSet]*futurePlan
}

func newMemoTable() *memoTable {
	t := &memoTable{}
	for i := range t.shards {
		t.shards[i].m = make(map[bitset.TPSet]*futurePlan)
	}
	return t
}

// claim returns the future for s and whether the caller won ownership.
// The winner must compute the plan, store it in f.plan and close
// f.done exactly once; losers wait on f.done and read f.plan.
func (t *memoTable) claim(s bitset.TPSet) (f *futurePlan, owner bool) {
	sh := &t.shards[s.Hash()%memoShards]
	sh.mu.Lock()
	if f, ok := sh.m[s]; ok {
		sh.mu.Unlock()
		return f, false
	}
	f = &futurePlan{done: make(chan struct{})}
	sh.m[s] = f
	sh.mu.Unlock()
	return f, true
}

// resolve publishes p as the owner's result and wakes all waiters.
func (f *futurePlan) resolve(p *plan.Node) {
	f.plan = p
	close(f.done)
}

// wait blocks until the owner resolves the future.
func (f *futurePlan) wait() *plan.Node {
	<-f.done
	return f.plan
}
