package opt

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"sparqlopt/internal/bitset"
	"sparqlopt/internal/cost"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/plan"
	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/sparql"
	"sparqlopt/internal/stats"
)

// synthStats attaches random statistics to a query as in §V-A: the
// cardinality of each pattern is uniform in [1, 1000], the binding
// count of each variable uniform in [1, card].
func synthStats(r *rand.Rand, q *sparql.Query) *stats.Stats {
	s := &stats.Stats{}
	for _, tp := range q.Patterns {
		card := float64(1 + r.Intn(1000))
		b := map[string]float64{}
		for _, v := range tp.Vars() {
			b[v] = float64(1 + r.Intn(int(card)))
		}
		s.Patterns = append(s.Patterns, stats.PatternStats{Card: card, Bindings: b})
	}
	return s
}

func makeInput(t *testing.T, q *sparql.Query, seed int64, m partition.Method) *Input {
	t.Helper()
	views, err := querygraph.Build(q)
	if err != nil {
		t.Fatal(err)
	}
	est, err := stats.NewEstimator(q, synthStats(rand.New(rand.NewSource(seed)), q))
	if err != nil {
		t.Fatal(err)
	}
	return &Input{Query: q, Views: views, Est: est, Params: cost.Default, Method: m}
}

func TestTChainFormula(t *testing.T) {
	// Eq. 8: T(Q_chain) = (n³ − n) / 6 — the number of cmds TD-CMD
	// enumerates across all connected subqueries.
	for _, n := range []int{4, 8, 12, 16} {
		in := makeInput(t, chainQuery(n), 1, nil)
		res, err := Optimize(context.Background(), in, TDCMD)
		if err != nil {
			t.Fatal(err)
		}
		want := int64((n*n*n - n) / 6)
		if res.Counter.CMDs != want {
			t.Errorf("chain %d: enumerated %d cmds, want T(Q) = %d", n, res.Counter.CMDs, want)
		}
	}
}

func TestTCycleFormula(t *testing.T) {
	// Eq. 9: T(Q_cycle) = (n³ − n²) / 2.
	for _, n := range []int{4, 6, 8, 10} {
		in := makeInput(t, cycleQuery(n), 2, nil)
		res, err := Optimize(context.Background(), in, TDCMD)
		if err != nil {
			t.Fatal(err)
		}
		want := int64((n*n*n - n*n) / 2)
		if res.Counter.CMDs != want {
			t.Errorf("cycle %d: enumerated %d cmds, want T(Q) = %d", n, res.Counter.CMDs, want)
		}
	}
}

func TestTStarFormula(t *testing.T) {
	// Eq. 7: T(Q_star) = Σ_{k=2..n} (B_k − 1)·C(n,k).
	bell := []int{1, 1, 2, 5, 15, 52, 203, 877, 4140}
	binom := func(n, k int) int {
		r := 1
		for i := 0; i < k; i++ {
			r = r * (n - i) / (i + 1)
		}
		return r
	}
	for _, n := range []int{3, 5, 8} {
		in := makeInput(t, starQuery(n), 3, nil)
		res, err := Optimize(context.Background(), in, TDCMD)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for k := 2; k <= n; k++ {
			want += (bell[k] - 1) * binom(n, k)
		}
		if res.Counter.CMDs != int64(want) {
			t.Errorf("star %d: enumerated %d cmds, want T(Q) = %d", n, res.Counter.CMDs, want)
		}
	}
}

// oracleBestCost computes the optimal plan cost by exhaustive
// memoized recursion over the oracle cmd enumerator — an independent
// implementation to cross-check TD-CMD's optimality.
func oracleBestCost(in *Input) float64 {
	jg := in.Views.Join
	var checker *partition.LocalChecker
	if in.Method != nil {
		checker = partition.NewLocalChecker(in.Method, in.Views.Query)
	}
	memo := map[bitset.TPSet]float64{}
	var best func(s bitset.TPSet) float64
	best = func(s bitset.TPSet) float64 {
		if c, ok := memo[s]; ok {
			return c
		}
		if s.Len() == 1 {
			c := in.Params.Scan(in.Est.Cardinality(s))
			memo[s] = c
			return c
		}
		bestCost := math.Inf(1)
		if checker != nil && checker.IsLocal(s) {
			inputs := []float64{}
			maxScan := 0.0
			s.Each(func(tp int) bool {
				card := in.Est.Cardinality(bitset.Single(tp))
				inputs = append(inputs, card)
				if sc := in.Params.Scan(card); sc > maxScan {
					maxScan = sc
				}
				return true
			})
			bestCost = maxScan + in.Params.Local(inputs, in.Est.Cardinality(s))
		}
		for _, key := range oracleCMDs(jg, s) {
			parts, _ := parseCmdKey(key)
			maxChild := 0.0
			inputs := make([]float64, len(parts))
			for i, p := range parts {
				if c := best(p); c > maxChild {
					maxChild = c
				}
				inputs[i] = in.Est.Cardinality(p)
			}
			out := in.Est.Cardinality(s)
			for _, opCost := range []float64{
				in.Params.Broadcast(inputs, out),
				in.Params.Repartition(inputs, out),
			} {
				if c := maxChild + opCost; c < bestCost {
					bestCost = c
				}
			}
		}
		memo[s] = bestCost
		return bestCost
	}
	return best(jg.All())
}

func TestTDCMDOptimal(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	methods := []partition.Method{nil, partition.HashSO{}, partition.PathBMC{}}
	for trial := 0; trial < 30; trial++ {
		q := randomConnectedQuery(r, 2+r.Intn(5))
		in := makeInput(t, q, int64(trial), methods[trial%len(methods)])
		res, err := Optimize(context.Background(), in, TDCMD)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Plan.Validate(); err != nil {
			t.Fatalf("trial %d: invalid plan: %v", trial, err)
		}
		want := oracleBestCost(in)
		if math.Abs(res.Plan.Cost-want) > 1e-6*math.Max(1, want) {
			t.Errorf("trial %d: TD-CMD cost %v, oracle optimum %v\n%s",
				trial, res.Plan.Cost, want, res.Plan.Format())
		}
	}
}

func TestPrunedNeverBeatsTDCMD(t *testing.T) {
	// TD-CMDP and HGR search subsets of TD-CMD's space, so their plan
	// costs are lower-bounded by TD-CMD's.
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		q := randomConnectedQuery(r, 3+r.Intn(5))
		in := makeInput(t, q, int64(100+trial), partition.HashSO{})
		full, err := Optimize(context.Background(), in, TDCMD)
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range []Algorithm{TDCMDP, HGRTDCMD, TDAuto} {
			res, err := Optimize(context.Background(), in, algo)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, algo, err)
			}
			if err := res.Plan.Validate(); err != nil {
				t.Fatalf("trial %d %v: invalid plan: %v", trial, algo, err)
			}
			if res.Plan.Cost < full.Plan.Cost-1e-6 {
				t.Errorf("trial %d: %v found cost %v below TD-CMD optimum %v",
					trial, algo, res.Plan.Cost, full.Plan.Cost)
			}
			if res.Plan.Set != full.Plan.Set {
				t.Errorf("trial %d: %v plan covers %v, want %v", trial, algo, res.Plan.Set, full.Plan.Set)
			}
		}
	}
}

func TestPruningShrinksSearchSpace(t *testing.T) {
	// On a star query, Rule 1 collapses the Bell-number space.
	in := makeInput(t, starQuery(8), 11, partition.HashSO{})
	full, err := Optimize(context.Background(), in, TDCMD)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Optimize(context.Background(), in, TDCMDP)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Counter.CMDs >= full.Counter.CMDs {
		t.Errorf("TD-CMDP enumerated %d cmds, TD-CMD %d; pruning had no effect",
			pruned.Counter.CMDs, full.Counter.CMDs)
	}
}

func TestLocalShortcut(t *testing.T) {
	// A star query is fully local under hash partitioning, so Rule 3
	// makes TD-CMDP return the flat local plan without enumerating.
	in := makeInput(t, starQuery(6), 12, partition.HashSO{})
	res, err := Optimize(context.Background(), in, TDCMDP)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counter.CMDs != 0 {
		t.Errorf("local shortcut still enumerated %d cmds", res.Counter.CMDs)
	}
	if res.Plan.Alg != plan.LocalJoin || len(res.Plan.Children) != 6 {
		t.Errorf("expected a 6-way local join, got\n%s", res.Plan.Format())
	}
}

func TestLocalPlanPreferredByTDCMD(t *testing.T) {
	// Even without the shortcut, the local plan should win on a local
	// query: local joins dominate the alternatives under Table II.
	in := makeInput(t, starQuery(5), 13, partition.HashSO{})
	res, err := Optimize(context.Background(), in, TDCMD)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Alg != plan.LocalJoin {
		t.Errorf("TD-CMD did not pick the local plan:\n%s", res.Plan.Format())
	}
}

func TestHGRGroups(t *testing.T) {
	// Under path partitioning the whole fig1 query splits into few
	// local groups; every group must be a local query and they must
	// partition the pattern set.
	q := sparql.MustParse(fig1)
	in := makeInput(t, q, 14, partition.PathBMC{})
	res, err := Optimize(context.Background(), in, HGRTDCMD)
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups == nil {
		t.Fatal("HGR result missing groups")
	}
	checker := partition.NewLocalChecker(partition.PathBMC{}, in.Views.Query)
	var union bitset.TPSet
	for _, g := range res.Groups {
		if union.Overlaps(g) {
			t.Errorf("overlapping groups")
		}
		union = union.Union(g)
		if !checker.IsLocal(g) {
			t.Errorf("group %v is not a local query", g)
		}
		if !in.Views.Join.Connected(g) {
			t.Errorf("group %v is disconnected", g)
		}
	}
	if union != bitset.Full(7) {
		t.Errorf("groups cover %v, want all 7 patterns", union)
	}
	if len(res.Groups) >= 7 {
		t.Errorf("no reduction happened: %d groups", len(res.Groups))
	}
	if err := res.Plan.Validate(); err != nil {
		t.Error(err)
	}
}

func TestHGRWithoutMethodDegenerates(t *testing.T) {
	in := makeInput(t, chainQuery(5), 15, nil)
	res, err := Optimize(context.Background(), in, HGRTDCMD)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 5 {
		t.Errorf("expected singleton groups, got %v", res.Groups)
	}
	if err := res.Plan.Validate(); err != nil {
		t.Error(err)
	}
}

func TestHGRReducesSearchSpace(t *testing.T) {
	in := makeInput(t, sparql.MustParse(fig1), 16, partition.HashSO{})
	full, err := Optimize(context.Background(), in, TDCMD)
	if err != nil {
		t.Fatal(err)
	}
	hgr, err := Optimize(context.Background(), in, HGRTDCMD)
	if err != nil {
		t.Fatal(err)
	}
	if hgr.Counter.CMDs >= full.Counter.CMDs {
		t.Errorf("HGR enumerated %d cmds, TD-CMD %d", hgr.Counter.CMDs, full.Counter.CMDs)
	}
}

func TestChooseAuto(t *testing.T) {
	cases := []struct {
		name string
		q    *sparql.Query
		want Algorithm
	}{
		// Low-degree acyclic/single-cycle: TD-CMD.
		{"chain20", chainQuery(20), TDCMD},
		{"cycle12", cycleQuery(12), TDCMD},
		// High degree, moderate size: TD-CMDP (θ_d = 5, θ_n = 30).
		{"star8", starQuery(8), TDCMDP},
		{"star29", starQuery(29), TDCMDP},
		// High degree, large: HGR.
		{"star35", starQuery(35), HGRTDCMD},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			jg := mustJG(t, c.q)
			if got := chooseAuto(jg); got != c.want {
				t.Errorf("chooseAuto = %v, want %v", got, c.want)
			}
		})
	}
}

func TestChooseAutoMultiCycle(t *testing.T) {
	// More join variables than patterns (ratio < 1): a pair of
	// patterns sharing all three variables.
	q := &sparql.Query{Patterns: []sparql.TriplePattern{
		{S: sparql.V("a"), P: sparql.V("b"), O: sparql.V("c")},
		{S: sparql.V("a"), P: sparql.V("b"), O: sparql.V("c")},
	}}
	jg := mustJG(t, q)
	if jg.NumJoinVars() <= jg.NumTP {
		t.Fatal("test premise: want more join vars than patterns")
	}
	if got := chooseAuto(jg); got != TDCMD { // |V_T| = 2 < λ_n
		t.Errorf("chooseAuto = %v, want TD-CMD", got)
	}
}

func TestOptimizeDisconnected(t *testing.T) {
	q := sparql.MustParse(`SELECT * WHERE { ?a <p> ?b . ?c <p> ?d . }`)
	in := makeInput(t, q, 17, nil)
	if _, err := Optimize(context.Background(), in, TDCMD); err == nil {
		t.Error("disconnected query accepted")
	}
}

func TestOptimizeSinglePattern(t *testing.T) {
	q := sparql.MustParse(`SELECT * WHERE { ?a <p> ?b . }`)
	in := makeInput(t, q, 18, partition.HashSO{})
	for _, algo := range []Algorithm{TDCMD, TDCMDP, HGRTDCMD, TDAuto} {
		res, err := Optimize(context.Background(), in, algo)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if res.Plan.Alg != plan.Scan {
			t.Errorf("%v: expected scan plan", algo)
		}
	}
}

func TestOptimizeValidation(t *testing.T) {
	in := makeInput(t, chainQuery(3), 19, nil)
	if _, err := Optimize(context.Background(), &Input{Query: in.Query}, TDCMD); err == nil {
		t.Error("nil estimator accepted")
	}
	if _, err := Optimize(context.Background(), &Input{Est: in.Est}, TDCMD); err == nil {
		t.Error("nil query accepted")
	}
	if _, err := Optimize(context.Background(), in, Algorithm(99)); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestOptimizeCancellation(t *testing.T) {
	// A 30-pattern star explodes without pruning; a tiny deadline must
	// abort with the context error, not hang.
	in := makeInput(t, starQuery(30), 20, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Optimize(ctx, in, TDCMD)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}

func TestResultUsedField(t *testing.T) {
	in := makeInput(t, chainQuery(6), 21, partition.HashSO{})
	res, err := Optimize(context.Background(), in, TDAuto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Used != TDCMD { // chain: low degree → TD-CMD
		t.Errorf("Used = %v, want TD-CMD", res.Used)
	}
}

func TestAlgorithmString(t *testing.T) {
	want := map[Algorithm]string{TDCMD: "TD-CMD", TDCMDP: "TD-CMDP", HGRTDCMD: "HGR-TD-CMD", TDAuto: "TD-Auto"}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q", a, a.String())
		}
	}
}

func TestFlatPlanNotAlwaysBest(t *testing.T) {
	// §IV: "the flattest plan is not always the best plan". Verify
	// that on some random inputs TD-CMD's optimum is deeper than the
	// flattest possible plan (depth 2).
	r := rand.New(rand.NewSource(23))
	deeper := 0
	for trial := 0; trial < 40; trial++ {
		q := randomConnectedQuery(r, 5+r.Intn(3))
		in := makeInput(t, q, int64(300+trial), nil)
		res, err := Optimize(context.Background(), in, TDCMD)
		if err != nil {
			t.Fatal(err)
		}
		if res.Plan.Depth() > 2 {
			deeper++
		}
	}
	if deeper == 0 {
		t.Error("TD-CMD never chose a plan deeper than the flattest; suspicious")
	}
}

func TestMaximumQuerySize(t *testing.T) {
	// The boundary case: a 64-pattern chain (the bitset limit).
	// T(chain_64) = (64³−64)/6 = 43,680 — TD-CMD must handle it fast.
	n := 64
	in := makeInput(t, chainQuery(n), 64, nil)
	res, err := Optimize(context.Background(), in, TDCMD)
	if err != nil {
		t.Fatal(err)
	}
	want := int64((n*n*n - n) / 6)
	if res.Counter.CMDs != want {
		t.Errorf("chain-64: %d cmds, want %d", res.Counter.CMDs, want)
	}
	if err := res.Plan.Validate(); err != nil {
		t.Error(err)
	}
}

func TestConclusionsHoldAtLargeCardinalityRange(t *testing.T) {
	// §V-A: "we have also used the range between 1 to 100,000, which
	// does not affect any of our conclusions". Re-run the core
	// invariants (TD-CMD optimal, heuristics never better, spaces
	// confined) with the wider statistics range.
	r := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 10; trial++ {
		q := randomConnectedQuery(r, 3+r.Intn(4))
		views, err := querygraph.Build(q)
		if err != nil {
			t.Fatal(err)
		}
		s := &stats.Stats{}
		rr := rand.New(rand.NewSource(int64(trial)))
		for _, tp := range q.Patterns {
			card := float64(1 + rr.Intn(100000))
			b := map[string]float64{}
			for _, v := range tp.Vars() {
				b[v] = float64(1 + rr.Intn(int(card)))
			}
			s.Patterns = append(s.Patterns, stats.PatternStats{Card: card, Bindings: b})
		}
		est, err := stats.NewEstimator(q, s)
		if err != nil {
			t.Fatal(err)
		}
		in := &Input{Query: q, Views: views, Est: est, Params: cost.Default, Method: partition.HashSO{}}
		full, err := Optimize(context.Background(), in, TDCMD)
		if err != nil {
			t.Fatal(err)
		}
		if want := oracleBestCost(in); math.Abs(full.Plan.Cost-want) > 1e-6*math.Max(1, want) {
			t.Errorf("trial %d: TD-CMD not optimal at wide range: %v vs %v", trial, full.Plan.Cost, want)
		}
		for _, algo := range []Algorithm{TDCMDP, HGRTDCMD, TDAuto} {
			res, err := Optimize(context.Background(), in, algo)
			if err != nil {
				t.Fatal(err)
			}
			if res.Plan.Cost < full.Plan.Cost-1e-6 {
				t.Errorf("trial %d: %v beat the optimum at wide range", trial, algo)
			}
		}
	}
}
