package opt

import (
	"context"

	"sparqlopt/internal/bitset"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/plan"
	"sparqlopt/internal/querygraph"
)

// runHGR implements HGR-TD-CMD (§IV-B): solve the join graph reduction
// problem — cover the query with local queries of minimal total
// cardinality (Definition 4; NP-hard by Theorem 4) — with the greedy
// weighted-set-cover heuristic, collapse each chosen group into one
// vertex, and run unpruned TD-CMD over the reduced join graph.
func runHGR(ctx context.Context, in *Input) (*Result, error) {
	groups := ReduceJoinGraph(in)
	// Build the reduced join graph: one unit per group, exposing the
	// union of the member patterns' variables.
	varSets := make([][]string, len(groups))
	for i, g := range groups {
		seen := map[string]bool{}
		g.Each(func(tp int) bool {
			for _, v := range in.Query.Patterns[tp].Vars() {
				if !seen[v] {
					seen[v] = true
					varSets[i] = append(varSets[i], v)
				}
			}
			return true
		})
	}
	jg, err := querygraph.NewJoinGraphFromVarSets(varSets)
	if err != nil {
		return nil, err
	}
	var checker *partition.LocalChecker
	if in.Method != nil {
		checker = partition.NewLocalChecker(in.Method, in.Views.Query)
	}
	origSet := func(units bitset.TPSet) bitset.TPSet {
		var out bitset.TPSet
		units.Each(func(u int) bool {
			out = out.Union(groups[u])
			return true
		})
		return out
	}
	origJG := in.Views.Join
	sp := &space{
		ctx: ctx,
		jg:  jg,
		leaf: func(u int) *plan.Node {
			return groupPlan(in, origJG, groups[u])
		},
		card: func(units bitset.TPSet) float64 {
			return in.Est.Cardinality(origSet(units))
		},
		isLocal: func(units bitset.TPSet) bool {
			if checker == nil {
				return units.Len() <= 1
			}
			return checker.IsLocal(origSet(units))
		},
		counter: &counters{},
		params:  in.Params,
		opt:     Options{Parallelism: in.Parallelism},
		inst:    in.Inst,
		gauge:   in.Gauge,
		faults:  in.Faults,
	}
	p, err := sp.run()
	if err != nil {
		return nil, err
	}
	return &Result{Plan: p, Counter: sp.counter.snapshot(), Used: HGRTDCMD, Groups: groups}, nil
}

// groupPlan builds the leaf plan of one reduction group: a scan for a
// single pattern, a k-way local join of scans otherwise (every group
// is a local query by construction).
func groupPlan(in *Input, jg *querygraph.JoinGraph, group bitset.TPSet) *plan.Node {
	if group.Len() == 1 {
		tp := group.Min()
		return plan.NewScan(tp, in.Est.Cardinality(group), in.Params)
	}
	children := make([]*plan.Node, 0, group.Len())
	group.Each(func(tp int) bool {
		children = append(children, plan.NewScan(tp, in.Est.Cardinality(bitset.Single(tp)), in.Params))
		return true
	})
	name := ""
	if vars := jg.JoinVarsOf(group); len(vars) > 0 {
		name = jg.Vars[vars[0]]
	}
	return plan.NewJoin(plan.LocalJoin, name, children, in.Est.Cardinality(group), in.Params)
}

// ReduceJoinGraph solves the JGR problem greedily: repeatedly pick the
// candidate local query SQ minimizing card(SQ)/|SQ ∩ uncovered| until
// the query is covered (the classic ln-n-approximate weighted set
// cover). Candidates are the connected components of MLQ ∩ uncovered
// for every maximal local query MLQ; overlapping picks are made
// disjoint by intersecting with the uncovered set, so the returned
// groups partition the query. Every group is a local query (a
// connected subset of an MLQ). With no partitioning method, every
// pattern forms its own group and the reduction is the identity.
func ReduceJoinGraph(in *Input) []bitset.TPSet {
	jg := in.Views.Join
	all := jg.All()
	var mlqs []bitset.TPSet
	if in.Method != nil {
		mlqs = partition.NewLocalChecker(in.Method, in.Views.Query).MaximalLocalQueries()
	}
	var groups []bitset.TPSet
	uncovered := all
	for !uncovered.IsEmpty() {
		best := bitset.TPSet(0)
		bestRatio := 0.0
		for _, mlq := range mlqs {
			avail := mlq.Intersect(uncovered)
			if avail.IsEmpty() {
				continue
			}
			for _, piece := range jg.Components(avail) {
				ratio := in.Est.Cardinality(piece) / float64(piece.Len())
				if best.IsEmpty() || ratio < bestRatio {
					best, bestRatio = piece, ratio
				}
			}
		}
		if best.IsEmpty() {
			// No local query covers the remainder: emit singletons.
			uncovered.Each(func(tp int) bool {
				groups = append(groups, bitset.Single(tp))
				return true
			})
			break
		}
		groups = append(groups, best)
		uncovered = uncovered.Diff(best)
	}
	return groups
}
