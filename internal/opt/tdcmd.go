package opt

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"sparqlopt/internal/bitset"
	"sparqlopt/internal/cost"
	"sparqlopt/internal/obs"
	"sparqlopt/internal/plan"
	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/resilience"
	"sparqlopt/internal/resilience/faultinject"
)

// Options are the pruning rules of TD-CMDP (§IV-A) plus the
// parallelism knob. The zero value is the unpruned TD-CMD at the
// default parallelism.
type Options struct {
	// PruneCCMD restricts k>2 divisions to connected complete-multi-
	// divisions (Rule 1).
	PruneCCMD bool
	// BinaryBroadcastOnly considers broadcast joins only for binary
	// divisions (Rule 2).
	BinaryBroadcastOnly bool
	// LocalShortcut makes the local-join plan final for local
	// subqueries, skipping their enumeration entirely (Rule 3).
	LocalShortcut bool
	// Parallelism bounds the number of worker goroutines the
	// enumeration may use. 0 selects runtime.GOMAXPROCS(0); any value
	// <= 1 selects the exact sequential path. Parallel runs are
	// deterministic: they produce plans with the same cost and the
	// same search-space counters as the sequential run.
	Parallelism int
}

// CMDPOptions enables all three TD-CMDP pruning rules.
func CMDPOptions() Options {
	return Options{PruneCCMD: true, BinaryBroadcastOnly: true, LocalShortcut: true}
}

// Counter instruments one optimizer run. It is a plain value snapshot;
// the enumerator accumulates into atomic counters internally and folds
// them into a Counter when the run finishes.
type Counter struct {
	// CMDs is the number of join operators (connected multi-divisions)
	// enumerated — the "size of the search space" of paper Table VII.
	CMDs int64
	// Plans is the number of candidate plans costed (each cmd may be
	// costed with several join algorithms).
	Plans int64
	// Subqueries is the number of distinct subqueries planned.
	Subqueries int64
}

// counters is the concurrency-safe accumulator behind Counter.
type counters struct {
	cmds, plans, subqueries atomic.Int64
}

func (c *counters) snapshot() Counter {
	return Counter{
		CMDs:       c.cmds.Load(),
		Plans:      c.plans.Load(),
		Subqueries: c.subqueries.Load(),
	}
}

// space is one plan-enumeration problem over "units". For plain TD-CMD
// each unit is one triple pattern; HGR-TD-CMD collapses local groups
// of patterns into single units and reuses the same machinery.
//
// Everything a worker reads during enumeration (jg, card, isLocal,
// params, leaves) is immutable once run starts; mutable state is
// confined to the memo (plain map when sequential, lock-striped future
// table when parallel), the atomic counters and the cancellation flag.
type space struct {
	ctx     context.Context
	jg      *querygraph.JoinGraph // join graph over units
	leaf    func(unit int) *plan.Node
	card    func(units bitset.TPSet) float64
	isLocal func(units bitset.TPSet) bool
	params  cost.Params
	opt     Options
	counter *counters
	// inst is the optional metrics bundle; nil disables recording.
	// Memo hit/miss splits and pruning tallies are schedule-dependent,
	// so they flow here rather than into the deterministic counters.
	inst *Instruments
	// gauge charges memo growth against the query's memory budget
	// (nil = unlimited); faults arms deterministic fault injection
	// (nil in production). memoCharged tracks what this run reserved
	// so releaseMemo can return it when the memo dies with the run.
	gauge       *resilience.Gauge
	faults      *faultinject.Set
	memoCharged atomic.Int64

	// leaves caches the leaf plan of every unit: leaf plans are pure
	// functions of the unit, and localPlan/bestPlanGen ask for the
	// same ones over and over.
	leaves []*plan.Node

	// Sequential memo (Parallelism <= 1).
	memo map[bitset.TPSet]*plan.Node

	// Parallel machinery (Parallelism > 1).
	pmemo *memoTable
	pool  *pool

	// stopped flips once on the first observed cancellation; every
	// worker polls it. err records the first cause.
	stopped atomic.Bool
	errMu   sync.Mutex
	err     error
}

// cmdBatchSize is how many connected multi-divisions the enumeration
// goroutine buffers before handing them to a costing worker. Large
// enough to amortize the handoff, small enough that children of early
// CMDs start planning while later ones are still being enumerated.
const cmdBatchSize = 32

const cancelCheckInterval = 4096

// worker carries per-goroutine enumeration state — currently just the
// step counter that rations context checks. Each goroutine owns its
// own worker, so the counter needs no synchronization and every worker
// checks the context at least once per cancelCheckInterval of its own
// steps (the shared-counter version skipped checks arbitrarily long
// once several goroutines interleaved increments).
type worker struct {
	sp    *space
	steps int
}

// cancelled polls the run's stop flag and, every
// cancelCheckInterval steps of this worker, the context deadline.
func (w *worker) cancelled() bool {
	sp := w.sp
	if sp.stopped.Load() {
		return true
	}
	w.steps++
	if w.steps%cancelCheckInterval == 0 {
		if err := obs.Canceled(sp.ctx, "optimize"); err != nil {
			sp.fail(err)
			return true
		}
	}
	return false
}

// fail records the first error and stops every worker.
func (sp *space) fail(err error) {
	sp.errMu.Lock()
	if sp.err == nil {
		sp.err = err
	}
	sp.errMu.Unlock()
	sp.stopped.Store(true)
}

// parallelism resolves Options.Parallelism: 0 means GOMAXPROCS.
func (sp *space) parallelism() int {
	p := sp.opt.Parallelism
	if p == 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		p = 1
	}
	return p
}

// run optimizes the full unit set.
func (sp *space) run() (*plan.Node, error) {
	all := sp.jg.All()
	if !sp.jg.Connected(all) {
		return nil, fmt.Errorf("opt: query is disconnected; a Cartesian-product-free plan does not exist")
	}
	if err := obs.Canceled(sp.ctx, "optimize"); err != nil {
		return nil, err // honor already-expired contexts before fanning out
	}
	sp.buildLeaves()
	p := sp.enumerate(all)
	if sp.err != nil {
		return nil, sp.err
	}
	if p == nil {
		return nil, fmt.Errorf("opt: no plan found")
	}
	return p, nil
}

// enumerate runs the memoized recursion with the run's panic firewall:
// a panic on the enumerating goroutine (pool workers carry their own
// recovery in flush) becomes a typed *resilience.PanicError failing
// this run only. The memo's budget charges are returned on every exit —
// the memo dies with the run even though the winning plan survives it.
func (sp *space) enumerate(all bitset.TPSet) (p *plan.Node) {
	defer sp.releaseMemo()
	defer func() {
		if r := recover(); r != nil {
			sp.fail(resilience.NewPanicError(r))
			sp.inst.panicRecovered()
			p = nil
		}
	}()
	w := &worker{sp: sp}
	if sp.parallelism() > 1 {
		sp.pmemo = newMemoTable()
		sp.pool = newPool(sp.parallelism())
		return sp.bestPar(all, false, w)
	}
	sp.memo = make(map[bitset.TPSet]*plan.Node)
	return sp.best(all, false, w)
}

// buildLeaves materializes the per-unit leaf plans once.
func (sp *space) buildLeaves() {
	sp.leaves = make([]*plan.Node, sp.jg.NumTP)
	for u := 0; u < sp.jg.NumTP; u++ {
		sp.leaves[u] = sp.leaf(u)
	}
}

// best is GetBestPlan of Algorithm 1: memoized recursion (sequential
// path). inheritedLocal is true when an ancestor subquery was already
// known local (Lemma 4), which lets us skip the check.
func (sp *space) best(s bitset.TPSet, inheritedLocal bool, w *worker) *plan.Node {
	if p, ok := sp.memo[s]; ok {
		sp.inst.memoHit()
		return p
	}
	sp.inst.memoMiss()
	if w.cancelled() {
		return nil
	}
	p := sp.bestPlanGen(s, inheritedLocal, w)
	if !sp.stopped.Load() && sp.chargeMemoEntry() {
		sp.memo[s] = p
	}
	return p
}

// bestPlanGen is BestPlanGen of Algorithm 1 (sequential path).
func (sp *space) bestPlanGen(s bitset.TPSet, inheritedLocal bool, w *worker) *plan.Node {
	sp.counter.subqueries.Add(1)
	if s.Len() == 1 {
		return sp.leaves[s.Min()]
	}
	local := inheritedLocal || sp.isLocal(s)
	var bPlan *plan.Node
	if local {
		bPlan = sp.localPlan(s)
		if sp.opt.LocalShortcut {
			sp.inst.localShortcut()
			return bPlan // Rule 3: the local join plan is final
		}
	}
	out := sp.card(s)
	// children is scratch shared across cmds; a winning candidate gets
	// its own copy, so losing cmds (the common case) allocate nothing.
	// cmds/plans accumulate locally and fold into the shared atomics
	// once per subquery, keeping the hot loop free of shared writes.
	children := make([]*plan.Node, 0, s.Len())
	var cmds, plans int64
	ConnMultiDivision(sp.jg, s, sp.opt.PruneCCMD, func(cmd CMD) bool {
		if w.cancelled() {
			return false
		}
		sp.faults.PanicIf(faultinject.OptPanic)
		cmds++
		children = children[:0]
		for _, part := range cmd.Parts {
			ch := sp.best(part, local, w)
			if ch == nil {
				return false // cancelled
			}
			children = append(children, ch)
		}
		alg, c := sp.bestCandidate(children, out, &plans)
		if bPlan == nil || c < bPlan.Cost {
			kids := make([]*plan.Node, len(children))
			copy(kids, children)
			bPlan = plan.NewJoin(alg, sp.jg.Vars[cmd.Var], kids, out, sp.params)
		}
		return true
	})
	sp.counter.cmds.Add(cmds)
	sp.counter.plans.Add(plans)
	return bPlan
}

// bestCandidate costs the join candidates of one cmd — repartition
// always, broadcast when Rule 2 allows — and returns the cheaper
// algorithm with its cumulative cost, preferring repartition on ties.
// Candidates are costed without building nodes (plan.JoinCost), so
// only improving candidates ever allocate. plans accumulates the
// number of candidates costed into the caller's local counter.
func (sp *space) bestCandidate(children []*plan.Node, out float64, plans *int64) (plan.Algorithm, float64) {
	*plans++
	_, c := plan.JoinCost(plan.RepartitionJoin, children, out, sp.params)
	alg := plan.RepartitionJoin
	if !sp.opt.BinaryBroadcastOnly || len(children) == 2 {
		*plans++
		_, bc := plan.JoinCost(plan.BroadcastJoin, children, out, sp.params)
		if bc < c {
			alg, c = plan.BroadcastJoin, bc
		}
	} else {
		sp.inst.broadcastSkipped() // Rule 2 pruned this candidate
	}
	return alg, c
}

// bestPar is the parallel GetBestPlan: the first goroutine to claim a
// subquery plans it, everyone else blocks on its future. Each distinct
// subquery is therefore planned exactly once, as in the sequential
// run; whether a given subquery is local is a pure function of the
// set (Lemma 4), so the winning claimant's inheritedLocal flag cannot
// change the outcome.
func (sp *space) bestPar(s bitset.TPSet, inheritedLocal bool, w *worker) (p *plan.Node) {
	f, owner := sp.pmemo.claim(s)
	if !owner {
		sp.inst.memoHit()
		return f.wait()
	}
	sp.inst.memoMiss()
	// The owner must resolve its future on every exit — including a
	// panic unwinding through this frame — or the waiters deadlock. The
	// recovery itself happens further up (enumerate / flush); here we
	// only guarantee the wake-up, publishing whatever p holds (nil when
	// unwinding or cancelled).
	defer func() { f.resolve(p) }()
	if !sp.chargeMemoEntry() || w.cancelled() {
		return nil
	}
	p = sp.bestPlanGenPar(s, inheritedLocal, w)
	return p
}

// bestReducer folds the per-batch best plans into the subquery's best.
// Min-cost folding is order-independent, so the reduction is
// deterministic up to cost even though batches finish in any order.
type bestReducer struct {
	mu   sync.Mutex
	best *plan.Node
}

func (r *bestReducer) merge(p *plan.Node) {
	if p == nil {
		return
	}
	r.mu.Lock()
	if r.best == nil || p.Cost < r.best.Cost {
		r.best = p
	}
	r.mu.Unlock()
}

// bestPlanGenPar is BestPlanGen with the connected multi-divisions
// fanned out to the worker pool: the enumeration goroutine streams
// cmds into fixed-size batches; each batch plans its parts (recursing
// into bestPar, which claims further subqueries) and costs its
// candidates concurrently with enumeration of the remaining cmds.
func (sp *space) bestPlanGenPar(s bitset.TPSet, inheritedLocal bool, w *worker) *plan.Node {
	sp.counter.subqueries.Add(1)
	if s.Len() == 1 {
		return sp.leaves[s.Min()]
	}
	local := inheritedLocal || sp.isLocal(s)
	red := &bestReducer{}
	if local {
		lp := sp.localPlan(s)
		if sp.opt.LocalShortcut {
			sp.inst.localShortcut()
			return lp // Rule 3: the local join plan is final
		}
		red.best = lp
	}
	out := sp.card(s)
	var wg sync.WaitGroup
	var cmds int64
	batch := sp.pool.getBatch()
	flush := func() {
		if batch.len() == 0 {
			return
		}
		b := batch
		batch = sp.pool.getBatch()
		wg.Add(1)
		sp.pool.submit(func() {
			defer wg.Done()
			// Recover here — inside the submitted closure — so a panic
			// is caught whether the batch ran on a pool goroutine or
			// inline on the enumerating one. The run fails with a typed
			// error; the sibling workers see stopped and drain.
			defer func() {
				if r := recover(); r != nil {
					sp.fail(resilience.NewPanicError(r))
					sp.inst.panicRecovered()
				}
			}()
			sp.costBatch(b, local, out, red)
			sp.pool.putBatch(b)
		})
	}
	ConnMultiDivision(sp.jg, s, sp.opt.PruneCCMD, func(cmd CMD) bool {
		if w.cancelled() {
			return false
		}
		cmds++
		batch.add(cmd)
		if batch.len() == cmdBatchSize {
			flush()
		}
		return true
	})
	sp.counter.cmds.Add(cmds)
	flush()
	wg.Wait()
	sp.pool.putBatch(batch)
	return red.best
}

// costBatch plans the parts of every cmd in b and merges the batch's
// best candidate into red. Runs on a pool worker (or inline on the
// enumerating goroutine when the pool is saturated).
func (sp *space) costBatch(b *cmdBatch, local bool, out float64, red *bestReducer) {
	w := &worker{sp: sp}
	var best *plan.Node
	var plans int64
	children := make([]*plan.Node, 0, 8)
	for i := 0; i < b.len(); i++ {
		if w.cancelled() {
			break
		}
		sp.faults.PanicIf(faultinject.OptPanic)
		parts := b.partsOf(i)
		children = children[:0]
		ok := true
		for _, part := range parts {
			ch := sp.bestPar(part, local, w)
			if ch == nil {
				ok = false // cancelled
				break
			}
			children = append(children, ch)
		}
		if !ok {
			break
		}
		alg, c := sp.bestCandidate(children, out, &plans)
		if best == nil || c < best.Cost {
			kids := make([]*plan.Node, len(children))
			copy(kids, children)
			best = plan.NewJoin(alg, sp.jg.Vars[b.vjs[i]], kids, out, sp.params)
		}
	}
	sp.counter.plans.Add(plans)
	red.merge(best)
}

// localPlan builds the k-way local join of all units of the local
// subquery s.
func (sp *space) localPlan(s bitset.TPSet) *plan.Node {
	if s.Len() == 1 {
		return sp.leaves[s.Min()]
	}
	children := make([]*plan.Node, 0, s.Len())
	s.Each(func(u int) bool {
		children = append(children, sp.leaves[u])
		return true
	})
	joinVars := sp.jg.JoinVarsOf(s)
	name := ""
	if len(joinVars) > 0 {
		name = sp.jg.Vars[joinVars[0]]
	}
	sp.counter.plans.Add(1)
	return plan.NewJoin(plan.LocalJoin, name, children, sp.card(s), sp.params)
}
