package opt

import (
	"context"
	"fmt"

	"sparqlopt/internal/bitset"
	"sparqlopt/internal/cost"
	"sparqlopt/internal/plan"
	"sparqlopt/internal/querygraph"
)

// Options are the pruning rules of TD-CMDP (§IV-A). The zero value is
// the unpruned TD-CMD.
type Options struct {
	// PruneCCMD restricts k>2 divisions to connected complete-multi-
	// divisions (Rule 1).
	PruneCCMD bool
	// BinaryBroadcastOnly considers broadcast joins only for binary
	// divisions (Rule 2).
	BinaryBroadcastOnly bool
	// LocalShortcut makes the local-join plan final for local
	// subqueries, skipping their enumeration entirely (Rule 3).
	LocalShortcut bool
}

// CMDPOptions enables all three TD-CMDP pruning rules.
func CMDPOptions() Options {
	return Options{PruneCCMD: true, BinaryBroadcastOnly: true, LocalShortcut: true}
}

// Counter instruments one optimizer run.
type Counter struct {
	// CMDs is the number of join operators (connected multi-divisions)
	// enumerated — the "size of the search space" of paper Table VII.
	CMDs int64
	// Plans is the number of candidate plans costed (each cmd may be
	// costed with several join algorithms).
	Plans int64
	// Subqueries is the number of distinct subqueries planned.
	Subqueries int64
}

// space is one plan-enumeration problem over "units". For plain TD-CMD
// each unit is one triple pattern; HGR-TD-CMD collapses local groups
// of patterns into single units and reuses the same machinery.
type space struct {
	ctx     context.Context
	jg      *querygraph.JoinGraph // join graph over units
	leaf    func(unit int) *plan.Node
	card    func(units bitset.TPSet) float64
	isLocal func(units bitset.TPSet) bool
	params  cost.Params
	opt     Options
	counter *Counter
	memo    map[bitset.TPSet]*plan.Node
	steps   int
	err     error
}

const cancelCheckInterval = 4096

func (sp *space) cancelled() bool {
	if sp.err != nil {
		return true
	}
	sp.steps++
	if sp.steps%cancelCheckInterval == 0 {
		if err := sp.ctx.Err(); err != nil {
			sp.err = err
			return true
		}
	}
	return false
}

// run optimizes the full unit set.
func (sp *space) run() (*plan.Node, error) {
	all := sp.jg.All()
	if !sp.jg.Connected(all) {
		return nil, fmt.Errorf("opt: query is disconnected; a Cartesian-product-free plan does not exist")
	}
	sp.memo = make(map[bitset.TPSet]*plan.Node)
	p := sp.best(all, false)
	if sp.err != nil {
		return nil, sp.err
	}
	if p == nil {
		return nil, fmt.Errorf("opt: no plan found")
	}
	return p, nil
}

// best is GetBestPlan of Algorithm 1: memoized recursion. inheritedLocal
// is true when an ancestor subquery was already known local (Lemma 4),
// which lets us skip the check.
func (sp *space) best(s bitset.TPSet, inheritedLocal bool) *plan.Node {
	if p, ok := sp.memo[s]; ok {
		return p
	}
	if sp.cancelled() {
		return nil
	}
	p := sp.bestPlanGen(s, inheritedLocal)
	if sp.err == nil {
		sp.memo[s] = p
	}
	return p
}

// bestPlanGen is BestPlanGen of Algorithm 1.
func (sp *space) bestPlanGen(s bitset.TPSet, inheritedLocal bool) *plan.Node {
	sp.counter.Subqueries++
	if s.Len() == 1 {
		return sp.leaf(s.Min())
	}
	local := inheritedLocal || sp.isLocal(s)
	var bPlan *plan.Node
	if local {
		bPlan = sp.localPlan(s)
		if sp.opt.LocalShortcut {
			return bPlan // Rule 3: the local join plan is final
		}
	}
	ConnMultiDivision(sp.jg, s, sp.opt.PruneCCMD, func(cmd CMD) bool {
		if sp.cancelled() {
			return false
		}
		sp.counter.CMDs++
		children := make([]*plan.Node, len(cmd.Parts))
		inputs := make([]float64, len(cmd.Parts))
		for i, part := range cmd.Parts {
			ch := sp.best(part, local)
			if ch == nil {
				return false // cancelled
			}
			children[i] = ch
			inputs[i] = ch.Card
		}
		out := sp.card(s)
		vj := sp.jg.Vars[cmd.Var]
		// Repartition join: always a candidate.
		sp.counter.Plans++
		cand := plan.NewJoin(plan.RepartitionJoin, vj, children, out, sp.params)
		if bPlan == nil || cand.Cost < bPlan.Cost {
			bPlan = cand
		}
		// Broadcast join: Rule 2 restricts it to binary divisions.
		if !sp.opt.BinaryBroadcastOnly || len(cmd.Parts) == 2 {
			sp.counter.Plans++
			cand = plan.NewJoin(plan.BroadcastJoin, vj, children, out, sp.params)
			if cand.Cost < bPlan.Cost {
				bPlan = cand
			}
		}
		return true
	})
	return bPlan
}

// localPlan builds the k-way local join of all units of the local
// subquery s.
func (sp *space) localPlan(s bitset.TPSet) *plan.Node {
	if s.Len() == 1 {
		return sp.leaf(s.Min())
	}
	children := make([]*plan.Node, 0, s.Len())
	s.Each(func(u int) bool {
		children = append(children, sp.leaf(u))
		return true
	})
	joinVars := sp.jg.JoinVarsOf(s)
	name := ""
	if len(joinVars) > 0 {
		name = sp.jg.Vars[joinVars[0]]
	}
	sp.counter.Plans++
	return plan.NewJoin(plan.LocalJoin, name, children, sp.card(s), sp.params)
}
