package opt

import (
	"context"
	"fmt"

	"sparqlopt/internal/bitset"
	"sparqlopt/internal/cost"
	"sparqlopt/internal/obs"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/plan"
	"sparqlopt/internal/querygraph"
)

// runGreedy is the Greedy algorithm: a left-deep chain built by the
// classic smallest-first heuristic. Seed with the lowest-cardinality
// pattern, then repeatedly absorb the connected pattern with the
// lowest cardinality, picking the cheapest join algorithm for each
// step from the cost model. Ties break on pattern index, so the plan
// is deterministic.
//
// It deliberately has none of the enumerator's machinery — no memo, no
// worker pool, no budget or fault sites — because its job is to be the
// rung of the degradation ladder that cannot fail the way the rungs
// above it failed: O(n²) time, O(n) space, no goroutines to panic.
func runGreedy(ctx context.Context, in *Input) (*Result, error) {
	jg := in.Views.Join
	all := jg.All()
	if !jg.Connected(all) {
		return nil, fmt.Errorf("opt: query is disconnected; a Cartesian-product-free plan does not exist")
	}
	if err := obs.Canceled(ctx, "optimize"); err != nil {
		return nil, err
	}
	var checker *partition.LocalChecker
	if in.Method != nil {
		checker = partition.NewLocalChecker(in.Method, in.Views.Query)
	}
	isLocal := func(s bitset.TPSet) bool {
		if checker == nil {
			return s.Len() <= 1
		}
		return checker.IsLocal(s)
	}

	n := jg.NumTP
	leaves := make([]*plan.Node, n)
	cards := make([]float64, n)
	for u := 0; u < n; u++ {
		cards[u] = in.Est.Cardinality(bitset.Single(u))
		leaves[u] = plan.NewScan(u, cards[u], in.Params)
	}
	var counter Counter
	counter.Subqueries = int64(n)

	if isLocal(all) {
		// The whole query runs on one node: a k-way local join of the
		// leaves beats any chain of distributed joins.
		counter.Plans = 1
		counter.Subqueries++
		return &Result{Plan: localJoinOf(jg, all, leaves, in.Est.Cardinality(all), in.Params),
			Counter: counter, Used: Greedy}, nil
	}

	seed := 0
	for u := 1; u < n; u++ {
		if cards[u] < cards[seed] {
			seed = u
		}
	}
	cur := bitset.Single(seed)
	curPlan := leaves[seed]
	for cur != all {
		next, joinVar := -1, -1
		all.Diff(cur).Each(func(u int) bool {
			v := joinVarWith(jg, cur, u)
			if v < 0 {
				return true // not connected to the chain yet
			}
			if next < 0 || cards[u] < cards[next] {
				next, joinVar = u, v
			}
			return true
		})
		if next < 0 {
			// Unreachable after the Connected check above; belt and
			// braces against a malformed join graph.
			return nil, fmt.Errorf("opt: greedy planner stuck with %d patterns unjoined", all.Diff(cur).Len())
		}
		cur = cur.Union(bitset.Single(next))
		out := in.Est.Cardinality(cur)
		children := []*plan.Node{curPlan, leaves[next]}
		_, c := plan.JoinCost(plan.RepartitionJoin, children, out, in.Params)
		best := plan.RepartitionJoin
		if _, bc := plan.JoinCost(plan.BroadcastJoin, children, out, in.Params); bc < c {
			best, c = plan.BroadcastJoin, bc
		}
		counter.Plans += 2
		if isLocal(cur) {
			counter.Plans++
			if _, lc := plan.JoinCost(plan.LocalJoin, children, out, in.Params); lc < c {
				best, c = plan.LocalJoin, lc
			}
		}
		curPlan = plan.NewJoin(best, jg.Vars[joinVar], children, out, in.Params)
		counter.CMDs++
		counter.Subqueries++
	}
	return &Result{Plan: curPlan, Counter: counter, Used: Greedy}, nil
}

// joinVarWith returns the lowest-index variable pattern u shares with
// the set cur, or -1 when they are disconnected.
func joinVarWith(jg *querygraph.JoinGraph, cur bitset.TPSet, u int) int {
	for _, v := range jg.TPVars[u] {
		if !jg.Ntp[v].Intersect(cur).IsEmpty() {
			return v
		}
	}
	return -1
}

// localJoinOf builds the k-way local join of every unit in s.
func localJoinOf(jg *querygraph.JoinGraph, s bitset.TPSet, leaves []*plan.Node, card float64, params cost.Params) *plan.Node {
	if s.Len() == 1 {
		return leaves[s.Min()]
	}
	children := make([]*plan.Node, 0, s.Len())
	s.Each(func(u int) bool {
		children = append(children, leaves[u])
		return true
	})
	name := ""
	if joinVars := jg.JoinVarsOf(s); len(joinVars) > 0 {
		name = jg.Vars[joinVars[0]]
	}
	return plan.NewJoin(plan.LocalJoin, name, children, card, params)
}
