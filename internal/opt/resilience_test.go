package opt

import (
	"context"
	"errors"
	"testing"

	"sparqlopt/internal/partition"
	"sparqlopt/internal/resilience"
	"sparqlopt/internal/resilience/faultinject"
)

func TestGreedyProducesValidPlan(t *testing.T) {
	for name, q := range map[string]int{"chain": 0, "cycle": 1, "star": 2} {
		t.Run(name, func(t *testing.T) {
			query := chainQuery(8)
			switch q {
			case 1:
				query = cycleQuery(8)
			case 2:
				query = starQuery(8)
			}
			in := makeInput(t, query, 7, partition.HashSO{})
			res, err := Optimize(context.Background(), in, Greedy)
			if err != nil {
				t.Fatal(err)
			}
			if res.Used != Greedy {
				t.Fatalf("Used = %v, want Greedy", res.Used)
			}
			if err := res.Plan.Validate(); err != nil {
				t.Fatalf("invalid greedy plan: %v", err)
			}
			if got := len(res.Plan.Leaves()); got != 8 {
				t.Fatalf("plan covers %d patterns, want 8", got)
			}
			// Greedy is deterministic: a second run yields the same cost.
			res2, err := Optimize(context.Background(), in, Greedy)
			if err != nil {
				t.Fatal(err)
			}
			if res2.Plan.Cost != res.Plan.Cost {
				t.Fatalf("greedy not deterministic: %v vs %v", res.Plan.Cost, res2.Plan.Cost)
			}
		})
	}
}

func TestGreedyNeverBeatenByTDCMD(t *testing.T) {
	// TD-CMD is exhaustive over CP-free k-ary plans; greedy's left-deep
	// chain must never cost less (sanity of shared cost plumbing).
	for seed := int64(1); seed <= 5; seed++ {
		in := makeInput(t, chainQuery(7), seed, nil)
		exact, err := Optimize(context.Background(), in, TDCMD)
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := Optimize(context.Background(), in, Greedy)
		if err != nil {
			t.Fatal(err)
		}
		if greedy.Plan.Cost < exact.Plan.Cost-1e-9 {
			t.Fatalf("seed %d: greedy cost %v beats exhaustive %v", seed, greedy.Plan.Cost, exact.Plan.Cost)
		}
	}
}

func TestOptPanicRecoveredSequential(t *testing.T) {
	in := makeInput(t, chainQuery(6), 11, nil)
	in.Parallelism = 1
	in.Faults = faultinject.New(1)
	in.Faults.Arm(faultinject.OptPanic, 1)
	_, err := Optimize(context.Background(), in, TDCMD)
	var pe *resilience.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *resilience.PanicError", err, err)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic stack not captured")
	}
	if _, ok := pe.Value.(faultinject.Injected); !ok {
		t.Fatalf("panic value %v (%T), want faultinject.Injected", pe.Value, pe.Value)
	}
}

// The parallel enumerator's future memo must survive an owner panic:
// the owner resolves its future while unwinding, so waiters wake up
// instead of deadlocking, and the run fails with the typed error.
func TestOptPanicRecoveredParallel(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		in := makeInput(t, chainQuery(10), 11, nil)
		in.Parallelism = 4
		in.Faults = faultinject.New(seed)
		in.Faults.Arm(faultinject.OptPanic, 50)
		_, err := Optimize(context.Background(), in, TDCMD)
		var pe *resilience.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("seed %d: err = %v (%T), want *resilience.PanicError", seed, err, err)
		}
	}
}

func TestOptBudgetTrip(t *testing.T) {
	in := makeInput(t, chainQuery(10), 13, nil)
	in.Parallelism = 1
	in.Gauge = resilience.NewBudget(4*memoEntryBytes, 0).NewGauge()
	_, err := Optimize(context.Background(), in, TDCMD)
	if !errors.Is(err, resilience.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	var be *resilience.BudgetError
	if !errors.As(err, &be) || be.Site != "memo" {
		t.Fatalf("err = %+v, want *BudgetError at site memo", err)
	}
	// Everything the failed run reserved must have been released.
	if got := in.Gauge.Used(); got != 0 {
		t.Fatalf("gauge still holds %d bytes after failed run", got)
	}
}

func TestOptBudgetFaultWithoutGauge(t *testing.T) {
	in := makeInput(t, chainQuery(6), 17, nil)
	in.Parallelism = 2
	in.Faults = faultinject.New(2)
	in.Faults.Arm(faultinject.OptBudget, 10)
	_, err := Optimize(context.Background(), in, TDCMD)
	if !errors.Is(err, resilience.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestOptBudgetEnoughForSmallQuery(t *testing.T) {
	in := makeInput(t, chainQuery(5), 19, nil)
	in.Parallelism = 1
	in.Gauge = resilience.NewBudget(1<<20, 0).NewGauge()
	res, err := Optimize(context.Background(), in, TDCMD)
	if err != nil {
		t.Fatalf("budgeted run failed: %v", err)
	}
	if err := res.Plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := in.Gauge.Used(); got != 0 {
		t.Fatalf("gauge holds %d bytes after successful run (memo must be released)", got)
	}
}
