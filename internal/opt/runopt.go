package opt

import (
	"time"

	"sparqlopt/internal/obs"
	"sparqlopt/internal/resilience/faultinject"
)

// RunSettings is the resolved per-call configuration of one serving
// call (Run/Optimize and friends). It lives here — not in the root
// package — so that Algorithm itself can implement RunOption: old call
// sites passing a bare algorithm (`sys.Run(ctx, src, opt.TDCMD)`) keep
// compiling against the variadic signatures.
type RunSettings struct {
	// Algorithm is the optimization algorithm. Defaults to TDAuto.
	Algorithm Algorithm
	// Deadline, when positive, bounds the call with a per-call timeout
	// layered on whatever deadline ctx already carries.
	Deadline time.Duration
	// TraceSink, when non-nil, enables lifecycle tracing for the call;
	// the completed trace is handed to the sink before the call returns.
	TraceSink func(*obs.Trace)
	// NoCache bypasses the plan cache for this call (the plan is still
	// optimized, just neither looked up nor stored).
	NoCache bool
	// OptTimeout, when positive, bounds plan optimization alone (not
	// execution). A timeout here is degradable: the serving path falls
	// down its ladder to a cheaper algorithm instead of failing.
	OptTimeout time.Duration
	// Limit, when positive, caps the number of result rows one call
	// returns: the stream ends after Limit rows and enumeration stops.
	// The cap applies to the engine's deterministic emission order,
	// before Run's final sort.
	Limit int64
	// Faults, when non-nil, arms the call's deterministic fault
	// injection (chaos tests only; nil in production).
	Faults *faultinject.Set
}

// RunOption configures one serving call.
type RunOption interface {
	ApplyRun(*RunSettings)
}

// ApplyRun lets a bare Algorithm act as a RunOption selecting itself,
// preserving source compatibility with the old positional signatures.
func (a Algorithm) ApplyRun(s *RunSettings) { s.Algorithm = a }

// RunOptionFunc adapts a function to the RunOption interface; the root
// package's With* constructors are built on it.
type RunOptionFunc func(*RunSettings)

// ApplyRun invokes f.
func (f RunOptionFunc) ApplyRun(s *RunSettings) { f(s) }

// NewRunSettings folds opts over the defaults (TDAuto, no deadline,
// no trace, cache on). Nil options are ignored.
func NewRunSettings(opts []RunOption) RunSettings {
	s := RunSettings{Algorithm: TDAuto}
	for _, o := range opts {
		if o != nil {
			o.ApplyRun(&s)
		}
	}
	return s
}
