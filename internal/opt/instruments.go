package opt

import (
	"time"

	"sparqlopt/internal/obs"
	"sparqlopt/internal/resilience"
)

// Instruments is the optimizer's metrics bundle. It is deliberately
// separate from Counter: Counter is part of the determinism contract
// (parallel and sequential runs must produce identical Counters),
// while memo hit/miss splits and pruning tallies depend on goroutine
// scheduling. Those live here, as monotonic process-wide metrics.
//
// A nil *Instruments disables everything: the recording methods are
// nil-receiver no-ops and the enumerator guards its only per-run
// time.Now calls behind one nil check.
type Instruments struct {
	// MemoHits / MemoMisses count memo-table lookups during plan
	// enumeration. Their sum is schedule-invariant (one per subquery
	// visit) but the split is not: in parallel runs, whichever worker
	// claims a subquery first takes the miss.
	MemoHits   *obs.Counter
	MemoMisses *obs.Counter
	// LocalShortcuts counts subqueries finalized by pruning Rule 3
	// (the local-join plan made final without enumeration).
	LocalShortcuts *obs.Counter
	// BroadcastsSkipped counts join candidates not costed because of
	// pruning Rule 2 (broadcast joins for k>2 divisions).
	BroadcastsSkipped *obs.Counter
	// CMDs/Plans/Subqueries mirror Counter, accumulated across runs.
	CMDs       *obs.Counter
	Plans      *obs.Counter
	Subqueries *obs.Counter
	// PanicsRecovered counts enumerator worker panics converted into
	// typed errors. Registered under the shared resilience family, so
	// the optimizer's, the engine's and the serving path's recoveries
	// accumulate into one process-wide series.
	PanicsRecovered *obs.Counter

	runs    [Greedy + 1]*obs.Counter
	seconds [Greedy + 1]*obs.Histogram
}

// NewInstruments registers the optimizer's metrics on r and returns
// the bundle. A nil registry returns nil (instrumentation disabled).
func NewInstruments(r *obs.Registry) *Instruments {
	if r == nil {
		return nil
	}
	inst := &Instruments{
		MemoHits:          r.Counter("opt_memo_hits_total", "Plan-memo lookups answered from the table."),
		MemoMisses:        r.Counter("opt_memo_misses_total", "Plan-memo lookups that had to enumerate."),
		LocalShortcuts:    r.Counter("opt_local_shortcuts_total", "Subqueries finalized by pruning Rule 3."),
		BroadcastsSkipped: r.Counter("opt_broadcasts_skipped_total", "Broadcast candidates pruned by Rule 2."),
		CMDs:              r.Counter("opt_cmds_total", "Connected multi-divisions enumerated."),
		Plans:             r.Counter("opt_plans_total", "Candidate plans costed."),
		Subqueries:        r.Counter("opt_subqueries_total", "Distinct subqueries planned."),
		PanicsRecovered:   r.Counter("resilience_panics_recovered_total", resilience.PanicsRecoveredHelp),
	}
	for a := TDCMD; a <= Greedy; a++ {
		lbl := obs.Label{Key: "algorithm", Value: a.String()}
		inst.runs[a] = r.Counter("opt_runs_total", "Optimization runs by concrete algorithm.", lbl)
		inst.seconds[a] = r.Histogram("opt_run_seconds", "Optimization latency by concrete algorithm.", nil, lbl)
	}
	return inst
}

func (i *Instruments) memoHit() {
	if i == nil {
		return
	}
	i.MemoHits.Inc()
}

func (i *Instruments) memoMiss() {
	if i == nil {
		return
	}
	i.MemoMisses.Inc()
}

func (i *Instruments) localShortcut() {
	if i == nil {
		return
	}
	i.LocalShortcuts.Inc()
}

func (i *Instruments) broadcastSkipped() {
	if i == nil {
		return
	}
	i.BroadcastsSkipped.Inc()
}

func (i *Instruments) panicRecovered() {
	if i == nil {
		return
	}
	i.PanicsRecovered.Inc()
}

// recordRun folds one finished run — the concrete algorithm used, its
// wall time and its search-space counters — into the metrics.
func (i *Instruments) recordRun(used Algorithm, d time.Duration, c Counter) {
	if i == nil {
		return
	}
	if used > Greedy {
		used = Greedy
	}
	i.runs[used].Inc()
	i.seconds[used].ObserveDuration(d)
	i.CMDs.Add(c.CMDs)
	i.Plans.Add(c.Plans)
	i.Subqueries.Add(c.Subqueries)
}
