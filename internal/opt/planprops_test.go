package opt

import (
	"context"
	"math/rand"
	"testing"

	"sparqlopt/internal/partition"
	"sparqlopt/internal/plan"
	"sparqlopt/internal/querygraph"
)

// assertNoCartesian walks a plan and asserts every distributed join is
// a genuine connected multi-division: each child holds a pattern
// adjacent to the join variable, and the joined set is connected.
func assertNoCartesian(t *testing.T, jg *querygraph.JoinGraph, n *plan.Node) {
	t.Helper()
	if n.Alg == plan.Scan {
		return
	}
	if n.Alg == plan.BroadcastJoin || n.Alg == plan.RepartitionJoin {
		vj, ok := jg.VarIndex[n.JoinVar]
		if !ok {
			t.Fatalf("join on unknown variable ?%s", n.JoinVar)
		}
		for _, ch := range n.Children {
			if !ch.Set.Overlaps(jg.Ntp[vj]) {
				t.Fatalf("child %v of join on ?%s has no adjacent pattern (Cartesian product)", ch.Set, n.JoinVar)
			}
		}
	}
	if !jg.Connected(n.Set) {
		t.Fatalf("operator output %v is a disconnected subquery", n.Set)
	}
	for _, ch := range n.Children {
		assertNoCartesian(t, jg, ch)
	}
}

// TestPlansAreCartesianFree checks the problem statement's core
// constraint ("a k-way bushy plan without Cartesian-product") on every
// algorithm over random queries.
func TestPlansAreCartesianFree(t *testing.T) {
	r := rand.New(rand.NewSource(401))
	algos := []Algorithm{TDCMD, TDCMDP, HGRTDCMD, TDAuto}
	for trial := 0; trial < 40; trial++ {
		q := randomConnectedQuery(r, 2+r.Intn(7))
		in := makeInput(t, q, int64(500+trial), partition.HashSO{})
		for _, algo := range algos {
			res, err := Optimize(context.Background(), in, algo)
			if err != nil {
				t.Fatal(err)
			}
			assertNoCartesian(t, in.Views.Join, res.Plan)
		}
	}
}

// TestPlanCardinalityConsistency: every operator's annotated
// cardinality equals the estimator's value for its pattern set.
func TestPlanCardinalityConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(403))
	for trial := 0; trial < 20; trial++ {
		q := randomConnectedQuery(r, 3+r.Intn(5))
		in := makeInput(t, q, int64(600+trial), partition.PathBMC{})
		res, err := Optimize(context.Background(), in, TDCMD)
		if err != nil {
			t.Fatal(err)
		}
		var walk func(n *plan.Node)
		walk = func(n *plan.Node) {
			want := in.Est.Cardinality(n.Set)
			if n.Card != want {
				t.Fatalf("node %v card %v, estimator says %v", n.Set, n.Card, want)
			}
			for _, ch := range n.Children {
				walk(ch)
			}
		}
		walk(res.Plan)
	}
}

// TestMemoDeterminism: optimizing the same input twice yields the
// same cost and the same search-space counters.
func TestMemoDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(405))
	for trial := 0; trial < 10; trial++ {
		q := randomConnectedQuery(r, 4+r.Intn(4))
		in := makeInput(t, q, int64(700+trial), partition.HashSO{})
		a, err := Optimize(context.Background(), in, TDCMD)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Optimize(context.Background(), in, TDCMD)
		if err != nil {
			t.Fatal(err)
		}
		if a.Plan.Cost != b.Plan.Cost || a.Counter != b.Counter {
			t.Errorf("non-deterministic: %v/%v vs %v/%v",
				a.Plan.Cost, a.Counter, b.Plan.Cost, b.Counter)
		}
	}
}

// TestOptionsCombinations exercises every rule subset for validity.
func TestOptionsCombinations(t *testing.T) {
	r := rand.New(rand.NewSource(407))
	q := randomConnectedQuery(r, 7)
	in := makeInput(t, q, 800, partition.HashSO{})
	full, err := Optimize(context.Background(), in, TDCMD)
	if err != nil {
		t.Fatal(err)
	}
	for mask := 0; mask < 8; mask++ {
		o := Options{
			PruneCCMD:           mask&1 != 0,
			BinaryBroadcastOnly: mask&2 != 0,
			LocalShortcut:       mask&4 != 0,
		}
		res, err := OptimizeWithOptions(context.Background(), in, o)
		if err != nil {
			t.Fatalf("mask %d: %v", mask, err)
		}
		if err := res.Plan.Validate(); err != nil {
			t.Fatalf("mask %d: %v", mask, err)
		}
		if res.Plan.Cost < full.Plan.Cost-1e-9 {
			t.Errorf("mask %d beat the optimum: %v < %v", mask, res.Plan.Cost, full.Plan.Cost)
		}
		if res.Counter.CMDs > full.Counter.CMDs {
			t.Errorf("mask %d enumerated more than TD-CMD", mask)
		}
	}
}
