package opt

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"sparqlopt/internal/partition"
	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/sparql"
	"sparqlopt/internal/stats"
	"sparqlopt/internal/workload/lubm"
	"sparqlopt/internal/workload/randquery"
	"sparqlopt/internal/workload/uniprot"
)

// benchmarkQueries are the paper's Table III queries: L1–L10 (LUBM)
// and U1–U5 (UniProt).
func benchmarkQueries() map[string]*sparql.Query {
	out := map[string]*sparql.Query{}
	for i := 1; i <= 10; i++ {
		name := fmt.Sprintf("L%d", i)
		out[name] = lubm.Query(name)
	}
	for i := 1; i <= 5; i++ {
		name := fmt.Sprintf("U%d", i)
		out[name] = uniprot.Query(name)
	}
	return out
}

// TestDeterminismParallel asserts the headline property of the
// parallel enumerator: for every benchmark query and every algorithm,
// runs at parallelism 2, 4 and 8 produce exactly the plan cost and
// search-space counters of the sequential run.
func TestDeterminismParallel(t *testing.T) {
	algos := []Algorithm{TDCMD, TDCMDP, HGRTDCMD, TDAuto}
	for name, q := range benchmarkQueries() {
		for _, algo := range algos {
			seq := makeInput(t, q, 42, partition.HashSO{})
			seq.Parallelism = 1
			want, err := Optimize(context.Background(), seq, algo)
			if err != nil {
				t.Fatalf("%s/%s sequential: %v", name, algo, err)
			}
			if err := want.Plan.Validate(); err != nil {
				t.Fatalf("%s/%s sequential plan invalid: %v", name, algo, err)
			}
			for _, p := range []int{2, 4, 8} {
				in := makeInput(t, q, 42, partition.HashSO{})
				in.Parallelism = p
				got, err := Optimize(context.Background(), in, algo)
				if err != nil {
					t.Fatalf("%s/%s P=%d: %v", name, algo, p, err)
				}
				if err := got.Plan.Validate(); err != nil {
					t.Errorf("%s/%s P=%d plan invalid: %v", name, algo, p, err)
				}
				if got.Plan.Cost != want.Plan.Cost {
					t.Errorf("%s/%s P=%d: cost %v, sequential %v", name, algo, p, got.Plan.Cost, want.Plan.Cost)
				}
				if got.Counter != want.Counter {
					t.Errorf("%s/%s P=%d: counters %+v, sequential %+v", name, algo, p, got.Counter, want.Counter)
				}
				if got.Used != want.Used {
					t.Errorf("%s/%s P=%d: used %v, sequential %v", name, algo, p, got.Used, want.Used)
				}
			}
		}
	}
}

// TestDeterminismRandom extends the determinism check to larger random
// join graphs of every structural class, where the parallel fan-out
// actually saturates the pool.
func TestDeterminismRandom(t *testing.T) {
	cases := []struct {
		class querygraph.Class
		n     int
	}{
		{querygraph.Chain, 18},
		{querygraph.Cycle, 12},
		{querygraph.Star, 9},
		{querygraph.Tree, 14},
		{querygraph.Dense, 10},
	}
	for _, tc := range cases {
		for _, algo := range []Algorithm{TDCMD, TDCMDP} {
			q, s := randquery.Generate(tc.class, tc.n, 7)
			est := mustEst(t, q, s)
			base := func(p int) *Input {
				views, err := querygraph.Build(q)
				if err != nil {
					t.Fatal(err)
				}
				return &Input{Query: q, Views: views, Est: est, Method: partition.HashSO{}, Parallelism: p}
			}
			want, err := Optimize(context.Background(), base(1), algo)
			if err != nil {
				t.Fatalf("%v-%d/%s sequential: %v", tc.class, tc.n, algo, err)
			}
			for _, p := range []int{2, 4, 8} {
				got, err := Optimize(context.Background(), base(p), algo)
				if err != nil {
					t.Fatalf("%v-%d/%s P=%d: %v", tc.class, tc.n, algo, p, err)
				}
				if got.Plan.Cost != want.Plan.Cost || got.Counter != want.Counter {
					t.Errorf("%v-%d/%s P=%d: (cost %v, %+v) != sequential (cost %v, %+v)",
						tc.class, tc.n, algo, p, got.Plan.Cost, got.Counter, want.Plan.Cost, want.Counter)
				}
			}
		}
	}
}

// TestParallelCancellationExpired asserts a parallel run refuses an
// already-expired context before fanning any work out.
func TestParallelCancellationExpired(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := makeInput(t, starQuery(14), 1, nil)
	in.Parallelism = 4
	start := time.Now()
	_, err := Optimize(ctx, in, TDCMD)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("expired context took %v to be honored", d)
	}
}

// TestParallelCancellationDeadline asserts every worker of a parallel
// run observes a deadline that expires mid-enumeration. Star-16 under
// unpruned TD-CMD enumerates billions of cmds — it can only return
// quickly by cancellation.
func TestParallelCancellationDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	in := makeInput(t, starQuery(16), 1, nil)
	in.Parallelism = 4
	start := time.Now()
	_, err := Optimize(ctx, in, TDCMD)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("deadline took %v to propagate to all workers", d)
	}
}

func mustEst(t *testing.T, q *sparql.Query, s *stats.Stats) *stats.Estimator {
	t.Helper()
	est, err := stats.NewEstimator(q, s)
	if err != nil {
		t.Fatal(err)
	}
	return est
}
