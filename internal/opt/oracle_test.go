package opt

// Brute-force reference enumerators used to validate Algorithms 2 and
// 3: they generate candidate divisions exhaustively and test
// Definition 3 directly.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"sparqlopt/internal/bitset"
	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/sparql"
)

// oracleCBDs returns every connected binary-division of q on vj, as
// canonical pairs (the side containing the smallest vj-neighbor first).
func oracleCBDs(jg *querygraph.JoinGraph, q bitset.TPSet, vj int) [][2]bitset.TPSet {
	neighbors := jg.Ntp[vj].Intersect(q)
	if neighbors.Len() < 2 {
		return nil
	}
	seed := neighbors.Min()
	var out [][2]bitset.TPSet
	q.Subsets(func(a bitset.TPSet) bool {
		if a == q || !a.Has(seed) {
			return true
		}
		b := q.Diff(a)
		if !a.Overlaps(neighbors) || !b.Overlaps(neighbors) {
			return true
		}
		if !jg.Connected(a) || !jg.Connected(b) {
			return true
		}
		out = append(out, [2]bitset.TPSet{a, b})
		return true
	})
	return out
}

// oracleCMDs returns every connected multi-division of q (all join
// variables), as canonical sorted part lists plus the variable index.
func oracleCMDs(jg *querygraph.JoinGraph, q bitset.TPSet) []string {
	var out []string
	for vj := range jg.Vars {
		neighbors := jg.Ntp[vj].Intersect(q)
		if neighbors.Len() < 2 {
			continue
		}
		members := q.Members()
		// Enumerate set partitions: assign each member to an existing
		// block or a fresh one.
		blocks := []bitset.TPSet{}
		var rec func(i int)
		rec = func(i int) {
			if i == len(members) {
				if len(blocks) < 2 {
					return
				}
				for _, b := range blocks {
					if !jg.Connected(b) || !b.Overlaps(neighbors) {
						return
					}
				}
				out = append(out, cmdKey(blocks, vj))
				return
			}
			for j := range blocks {
				blocks[j] = blocks[j].Add(members[i])
				rec(i + 1)
				blocks[j] = blocks[j].Remove(members[i])
			}
			blocks = append(blocks, bitset.Single(members[i]))
			rec(i + 1)
			blocks = blocks[:len(blocks)-1]
		}
		rec(0)
	}
	return out
}

// oracleCCMDs is oracleCMDs restricted to binary divisions plus
// connected complete-multi-divisions (Rule 1 of §IV-A).
func oracleCCMDs(jg *querygraph.JoinGraph, q bitset.TPSet) []string {
	var out []string
	for _, key := range oracleCMDs(jg, q) {
		parts, vj := parseCmdKey(key)
		if len(parts) == 2 {
			out = append(out, key)
			continue
		}
		neighbors := jg.Ntp[vj].Intersect(q)
		complete := true
		for _, p := range parts {
			if p.Intersect(neighbors).Len() != 1 {
				complete = false
				break
			}
		}
		if complete {
			out = append(out, key)
		}
	}
	return out
}

// cmdKey canonicalizes a cmd as "v#p1|p2|..." with parts sorted.
func cmdKey(parts []bitset.TPSet, vj int) string {
	ps := make([]uint64, len(parts))
	for i, p := range parts {
		ps[i] = uint64(p)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "v%d#", vj)
	for i, p := range ps {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%x", p)
	}
	return b.String()
}

func parseCmdKey(key string) ([]bitset.TPSet, int) {
	var vj int
	hash := strings.IndexByte(key, '#')
	fmt.Sscanf(key[:hash], "v%d", &vj)
	var parts []bitset.TPSet
	for _, s := range strings.Split(key[hash+1:], "|") {
		var x uint64
		fmt.Sscanf(s, "%x", &x)
		parts = append(parts, bitset.TPSet(x))
	}
	return parts, vj
}

// randomConnectedQuery builds a random connected query with n triple
// patterns over a shared variable pool; the structure mixes chains,
// stars and cross-links, producing every query class.
func randomConnectedQuery(r *rand.Rand, n int) *sparql.Query {
	q := &sparql.Query{}
	varName := func(i int) string { return fmt.Sprintf("v%d", i) }
	nvars := n + 2
	for i := 0; i < n; i++ {
		var s, o string
		if i == 0 {
			s, o = varName(0), varName(1)
		} else {
			// Guarantee connectivity: reuse a variable from an earlier
			// pattern on one side.
			prev := q.Patterns[r.Intn(i)]
			anchor := prev.S.Value
			if r.Intn(2) == 0 {
				anchor = prev.O.Value
			}
			other := varName(r.Intn(nvars))
			if r.Intn(2) == 0 {
				s, o = anchor, other
			} else {
				s, o = other, anchor
			}
		}
		q.Patterns = append(q.Patterns, sparql.TriplePattern{
			S: sparql.V(s),
			P: sparql.I(fmt.Sprintf("p%d", r.Intn(4))),
			O: sparql.V(o),
		})
	}
	return q
}

// chainQuery returns a chain of n patterns: ?x0 p ?x1 . ?x1 p ?x2 ...
func chainQuery(n int) *sparql.Query {
	q := &sparql.Query{}
	for i := 0; i < n; i++ {
		q.Patterns = append(q.Patterns, sparql.TriplePattern{
			S: sparql.V(fmt.Sprintf("x%d", i)),
			P: sparql.I(fmt.Sprintf("p%d", i)),
			O: sparql.V(fmt.Sprintf("x%d", i+1)),
		})
	}
	return q
}

// cycleQuery closes a chain of n patterns into a ring.
func cycleQuery(n int) *sparql.Query {
	q := chainQuery(n - 1)
	q.Patterns = append(q.Patterns, sparql.TriplePattern{
		S: sparql.V(fmt.Sprintf("x%d", n-1)),
		P: sparql.I("pc"),
		O: sparql.V("x0"),
	})
	return q
}

// starQuery returns n patterns sharing the single variable ?c.
func starQuery(n int) *sparql.Query {
	q := &sparql.Query{}
	for i := 0; i < n; i++ {
		q.Patterns = append(q.Patterns, sparql.TriplePattern{
			S: sparql.V(fmt.Sprintf("s%d", i)),
			P: sparql.I(fmt.Sprintf("p%d", i)),
			O: sparql.V("c"),
		})
	}
	return q
}
