package opt

import (
	"context"
	"fmt"
	"time"

	"sparqlopt/internal/bitset"
	"sparqlopt/internal/cost"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/plan"
	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/resilience"
	"sparqlopt/internal/resilience/faultinject"
	"sparqlopt/internal/sparql"
	"sparqlopt/internal/stats"
)

// Algorithm selects one of the paper's optimization algorithms.
type Algorithm uint8

const (
	// TDCMD is the unpruned top-down enumeration (Algorithm 1), which
	// always finds the minimum-cost Cartesian-product-free k-ary plan.
	TDCMD Algorithm = iota
	// TDCMDP is TD-CMD with the three pruning rules of §IV-A.
	TDCMDP
	// HGRTDCMD reduces the join graph by collapsing local groups
	// (§IV-B), then runs TD-CMD on the reduced graph.
	HGRTDCMD
	// TDAuto picks one of the above via the decision tree of §IV-C.
	TDAuto
	// Greedy is the left-deep greedy baseline: seed with the smallest
	// pattern, repeatedly join the smallest connected one. It is not
	// from the paper — it exists as the last rung of the serving path's
	// degradation ladder, because it needs no enumeration, no memo and
	// (almost) no memory, so it cannot trip a budget or time out.
	Greedy
)

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case TDCMD:
		return "TD-CMD"
	case TDCMDP:
		return "TD-CMDP"
	case HGRTDCMD:
		return "HGR-TD-CMD"
	case Greedy:
		return "Greedy-LD"
	default:
		return "TD-Auto"
	}
}

// Decision-tree thresholds of §IV-C ("in practice, based on our
// experiments, we set θ_d = 5, θ_n = 30 and λ_n = 14").
const (
	ThetaD  = 5
	ThetaN  = 30
	LambdaN = 14
)

// Input bundles everything one optimization run needs.
type Input struct {
	// Query is the parsed query.
	Query *sparql.Query
	// Views are the query's graph views (built from Query if nil).
	Views *querygraph.Views
	// Est estimates subquery cardinalities.
	Est *stats.Estimator
	// Params is the cost model (cost.Default if zero Nodes).
	Params cost.Params
	// Method is the data partitioning method, used to detect local
	// queries. When nil, no subquery is considered local except single
	// patterns (pure distributed execution).
	Method partition.Method
	// Parallelism bounds the optimizer's worker goroutines. 0 means
	// runtime.GOMAXPROCS(0); <= 1 forces the sequential enumerator.
	// Parallel runs are deterministic: plan cost and search-space
	// counters match the sequential run exactly. Options.Parallelism,
	// when set, takes precedence (OptimizeWithOptions callers).
	Parallelism int
	// Inst, when non-nil, receives run metrics (per-algorithm timing,
	// memo hit rate, pruning tallies). Unlike Counter, its values are
	// schedule-dependent; nil disables recording entirely.
	Inst *Instruments
	// Gauge, when non-nil, charges the enumerator's memo growth against
	// the query's memory budget; a trip fails the run with a typed
	// *resilience.BudgetError. Nil disables accounting.
	Gauge *resilience.Gauge
	// Faults, when non-nil, arms deterministic fault injection inside
	// the enumerator (chaos tests only; nil in production).
	Faults *faultinject.Set
}

// Result is the outcome of an optimization run.
type Result struct {
	// Plan is the chosen physical plan.
	Plan *plan.Node
	// Counter holds search-space instrumentation.
	Counter Counter
	// Used reports which concrete algorithm ran (interesting for TDAuto).
	Used Algorithm
	// Groups holds the join-graph-reduction groups when HGR ran
	// (nil otherwise).
	Groups []bitset.TPSet
}

// String summarizes the run on one line: the concrete algorithm, the
// plan cost and the search-space counters.
func (r *Result) String() string {
	return fmt.Sprintf("%s: cost=%.4g cmds=%d plans=%d subqueries=%d",
		r.Used, r.Plan.Cost, r.Counter.CMDs, r.Counter.Plans, r.Counter.Subqueries)
}

// Optimize runs the selected algorithm. ctx bounds the run; on
// cancellation or deadline the error is ctx.Err() (the paper's
// experiments cap optimization at 600 s and report "N/A").
func Optimize(ctx context.Context, in *Input, algo Algorithm) (*Result, error) {
	if err := normalize(in); err != nil {
		return nil, err
	}
	var start time.Time
	if in.Inst != nil {
		start = time.Now()
	}
	res, err := dispatch(ctx, in, algo)
	if err == nil && in.Inst != nil {
		in.Inst.recordRun(res.Used, time.Since(start), res.Counter)
	}
	return res, err
}

func dispatch(ctx context.Context, in *Input, algo Algorithm) (*Result, error) {
	switch algo {
	case TDCMD:
		return runTD(ctx, in, Options{})
	case TDCMDP:
		return runTD(ctx, in, CMDPOptions())
	case HGRTDCMD:
		return runHGR(ctx, in)
	case TDAuto:
		return runAuto(ctx, in)
	case Greedy:
		return runGreedy(ctx, in)
	}
	return nil, fmt.Errorf("opt: unknown algorithm %d", algo)
}

// NormalizeInput validates in and fills defaulted fields (Views from
// Query, cost.Default parameters). The baseline optimizers share it.
func NormalizeInput(in *Input) error { return normalize(in) }

// OptimizeWithOptions runs the top-down enumeration with an arbitrary
// combination of the TD-CMDP pruning rules — used by the ablation
// study; Optimize's named algorithms cover the paper's combinations.
func OptimizeWithOptions(ctx context.Context, in *Input, o Options) (*Result, error) {
	if err := normalize(in); err != nil {
		return nil, err
	}
	var start time.Time
	if in.Inst != nil {
		start = time.Now()
	}
	res, err := runTD(ctx, in, o)
	if err == nil && in.Inst != nil {
		in.Inst.recordRun(res.Used, time.Since(start), res.Counter)
	}
	return res, err
}

func normalize(in *Input) error {
	if in.Query == nil {
		return fmt.Errorf("opt: nil query")
	}
	if in.Views == nil {
		v, err := querygraph.Build(in.Query)
		if err != nil {
			return err
		}
		in.Views = v
	}
	if in.Est == nil {
		return fmt.Errorf("opt: nil estimator")
	}
	if in.Params.Nodes == 0 {
		in.Params = cost.Default
	}
	return nil
}

// identitySpace builds the unit space where each unit is one triple
// pattern.
func identitySpace(ctx context.Context, in *Input, o Options) *space {
	jg := in.Views.Join
	var checker *partition.LocalChecker
	if in.Method != nil {
		checker = partition.NewLocalChecker(in.Method, in.Views.Query)
	}
	return &space{
		ctx: ctx,
		jg:  jg,
		leaf: func(u int) *plan.Node {
			return plan.NewScan(u, in.Est.Cardinality(bitset.Single(u)), in.Params)
		},
		card: in.Est.Cardinality,
		isLocal: func(s bitset.TPSet) bool {
			if checker == nil {
				return s.Len() <= 1
			}
			return checker.IsLocal(s)
		},
		params:  in.Params,
		opt:     o,
		counter: &counters{},
		inst:    in.Inst,
		gauge:   in.Gauge,
		faults:  in.Faults,
	}
}

func runTD(ctx context.Context, in *Input, o Options) (*Result, error) {
	if o.Parallelism == 0 {
		o.Parallelism = in.Parallelism
	}
	sp := identitySpace(ctx, in, o)
	p, err := sp.run()
	if err != nil {
		return nil, err
	}
	used := TDCMD
	if o.PruneCCMD || o.BinaryBroadcastOnly || o.LocalShortcut {
		used = TDCMDP
	}
	return &Result{Plan: p, Counter: sp.counter.snapshot(), Used: used}, nil
}

// runAuto implements the decision tree of Fig. 5: for join graphs with
// |V_T|/|V_J| ≥ 1 (acyclic or single-cycle), low-degree join variables
// mean TD-CMD is affordable; high-degree variables route to TD-CMDP
// for moderate sizes and HGR-TD-CMD for large ones. Join graphs with
// more join variables than patterns (multiple cycles) use TD-CMD only
// while small.
func runAuto(ctx context.Context, in *Input) (*Result, error) {
	jg := in.Views.Join
	algo := chooseAuto(jg)
	res, err := dispatch(ctx, in, algo) // not Optimize: the outer call records the run metrics once
	if err != nil {
		return nil, err
	}
	res.Used = algo
	return res, nil
}

func chooseAuto(jg *querygraph.JoinGraph) Algorithm {
	nt, nj := jg.NumTP, jg.NumJoinVars()
	if nj == 0 || nt >= nj {
		if jg.MaxVarDegree() < ThetaD {
			return TDCMD
		}
		if nt < ThetaN {
			return TDCMDP
		}
		return HGRTDCMD
	}
	if nt < LambdaN {
		return TDCMD
	}
	return HGRTDCMD
}
