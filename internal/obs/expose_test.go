package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestWriteMetricsGolden pins the full Prometheus text exposition:
// family and series ordering, HELP/label escaping, optional HELP
// omission, cumulative histogram buckets and float formatting.
func TestWriteMetricsGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_requests_total", "Total requests served.", Label{Key: "algorithm", Value: "TD-CMD"}).Add(3)
	r.Counter("app_requests_total", "Total requests served.", Label{Key: "algorithm", Value: "TD-CMD-P"}).Inc()
	r.Counter("app_weird_total", "backslash \\ and\nnewline",
		Label{Key: "path", Value: "C:\\tmp \"x\"\nend"}).Inc()
	r.GaugeFunc("cache_entries", "Live cache entries.", func() float64 { return 12.5 })
	h := r.Histogram("op_seconds", "Operator latency.", []float64{0.125, 0.5, 2.5}, Label{Key: "op", Value: "join"})
	for _, v := range []float64{0.0625, 0.125, 1, 3} { // exact binary fractions: sum formats exactly
		h.Observe(v)
	}
	r.Histogram("parse_seconds", "", []float64{1}).Observe(0.5)
	r.Gauge("pool_size", "Worker pool size.").Set(7)

	var out strings.Builder
	if err := r.WriteMetrics(&out); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(out.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(want) {
		t.Errorf("exposition mismatch\n--- got ---\n%s--- want ---\n%s", out.String(), want)
	}
}

func TestWriteMetricsNilRegistry(t *testing.T) {
	var r *Registry
	if err := r.WriteMetrics(&strings.Builder{}); err == nil {
		t.Error("nil registry must return an error")
	}
}
