package obs

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestNilSlowLog(t *testing.T) {
	var l *SlowLog
	if l2 := NewSlowLog(0, time.Second); l2 != nil {
		t.Error("capacity 0 must return the nil (disabled) log")
	}
	if l.Record(SlowQueryEntry{Duration: time.Hour}) {
		t.Error("nil log must drop everything")
	}
	if l.Entries() != nil || l.Total() != 0 || l.Threshold() != 0 {
		t.Error("nil log must read empty")
	}
}

func TestSlowLogThreshold(t *testing.T) {
	l := NewSlowLog(8, 100*time.Millisecond)
	if l.Threshold() != 100*time.Millisecond {
		t.Fatalf("threshold = %v", l.Threshold())
	}
	if l.Record(SlowQueryEntry{Query: "fast", Duration: 10 * time.Millisecond}) {
		t.Error("fast success must be dropped")
	}
	if !l.Record(SlowQueryEntry{Query: "slow", Duration: 150 * time.Millisecond}) {
		t.Error("slow success must be kept")
	}
	if !l.Record(SlowQueryEntry{Query: "failed", Duration: time.Millisecond, Err: "boom"}) {
		t.Error("failures must be kept regardless of duration")
	}
	es := l.Entries()
	if len(es) != 2 || es[0].Query != "failed" || es[1].Query != "slow" {
		t.Fatalf("entries = %+v, want [failed slow] newest first", es)
	}
	if l.Total() != 2 {
		t.Errorf("total = %d, want 2", l.Total())
	}
}

func TestSlowLogRingOverwrite(t *testing.T) {
	l := NewSlowLog(3, 0)
	for i := 0; i < 5; i++ {
		l.Record(SlowQueryEntry{Query: fmt.Sprintf("q%d", i), Duration: time.Second})
	}
	es := l.Entries()
	if len(es) != 3 {
		t.Fatalf("len = %d, want capacity 3", len(es))
	}
	for i, want := range []string{"q4", "q3", "q2"} {
		if es[i].Query != want {
			t.Errorf("entries[%d] = %s, want %s", i, es[i].Query, want)
		}
	}
	if l.Total() != 5 {
		t.Errorf("total = %d, want 5 (overwritten entries still counted)", l.Total())
	}
}

func TestSlowQueryEntryString(t *testing.T) {
	e := SlowQueryEntry{
		Time:      time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC),
		Query:     "SELECT  ?x\nWHERE { ?x <p> ?y }",
		Algorithm: "TD-CMD",
		Duration:  1500 * time.Millisecond,
		Rows:      12,
		CacheHit:  true,
		Phases:    []PhaseTiming{{Name: "optimize", Dur: 2 * time.Millisecond}, {Name: "execute", Dur: time.Second}},
	}
	s := e.String()
	for _, want := range []string{"TD-CMD", "rows=12", "cache=hit", "optimize=2ms", "execute=1s",
		`query="SELECT ?x WHERE { ?x <p> ?y }"`} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in %q", want, s)
		}
	}
	fail := SlowQueryEntry{Err: "query phase join: context canceled"}
	if !strings.Contains(fail.String(), `ERROR "query phase join: context canceled"`) {
		t.Errorf("failure String() = %q", fail.String())
	}
	long := SlowQueryEntry{Query: strings.Repeat("x ", 300)}
	if ls := long.String(); !strings.Contains(ls, "...") || len(ls) > 320 {
		t.Errorf("long query must be condensed, got %d bytes", len(ls))
	}
}
