package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryTorture hammers one registry from 64 goroutines across
// every instrument kind — racing get-or-create with writes and with
// concurrent expositions — and then checks the totals. Run under
// -race, this is the registry's thread-safety proof.
func TestRegistryTorture(t *testing.T) {
	const (
		goroutines = 64
		iters      = 500
	)
	r := NewRegistry()
	var live Gauge // backs the gauge funcs
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lbl := Label{Key: "worker", Value: fmt.Sprintf("w%02d", g%8)}
			for i := 0; i < iters; i++ {
				// Re-fetch handles every iteration: get-or-create must be
				// race-free and always return the same instrument.
				r.Counter("torture_ops_total", "ops", lbl).Inc()
				r.Counter("torture_rows_total", "rows").Add(3)
				r.Gauge("torture_depth", "depth", lbl).Add(1)
				r.Gauge("torture_depth", "depth", lbl).Add(-1)
				r.Histogram("torture_latency_seconds", "lat", nil, lbl).Observe(float64(i%7) * 1e-4)
				r.Histogram("torture_latency_seconds", "lat", nil, lbl).ObserveDuration(time.Microsecond)
				r.GaugeFunc("torture_live", "live", func() float64 { return float64(live.Value()) }, lbl)
				if i%64 == 0 {
					if err := r.WriteMetrics(io.Discard); err != nil {
						t.Errorf("WriteMetrics: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	if got := r.Counter("torture_rows_total", "rows").Value(); got != int64(goroutines*iters*3) {
		t.Errorf("rows counter = %d, want %d", got, goroutines*iters*3)
	}
	var ops int64
	for w := 0; w < 8; w++ {
		lbl := Label{Key: "worker", Value: fmt.Sprintf("w%02d", w)}
		ops += r.Counter("torture_ops_total", "ops", lbl).Value()
		if d := r.Gauge("torture_depth", "depth", lbl).Value(); d != 0 {
			t.Errorf("gauge %v = %d, want 0", lbl, d)
		}
		h := r.Histogram("torture_latency_seconds", "lat", nil, lbl)
		if h.Count() != int64(goroutines/8*iters*2) {
			t.Errorf("histogram %v count = %d, want %d", lbl, h.Count(), goroutines/8*iters*2)
		}
	}
	if ops != goroutines*iters {
		t.Errorf("ops counters sum to %d, want %d", ops, goroutines*iters)
	}
	var out strings.Builder
	if err := r.WriteMetrics(&out); err != nil {
		t.Fatalf("final WriteMetrics: %v", err)
	}
	for _, want := range []string{
		"# TYPE torture_ops_total counter",
		"# TYPE torture_depth gauge",
		"# TYPE torture_latency_seconds histogram",
		"# TYPE torture_live gauge",
		`torture_latency_seconds_bucket{worker="w00",le="+Inf"}`,
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestNilInstrumentsAreNoops(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments must read as zero")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 100} {
		h.Observe(v)
	}
	want := []int64{2, 2, 2, 1} // ≤1: {0.5,1}; (1,2]: {1.5,2}; (2,4]: {3,4}; >4: {100}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	if h.Sum() != 112 {
		t.Errorf("sum = %g, want 112", h.Sum())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge must panic")
		}
	}()
	r := NewRegistry()
	r.Counter("m", "")
	r.Gauge("m", "")
}
