package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is
// usable; methods on a nil *Counter are no-ops so unwired instruments
// cost one predictable branch.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds delta (negative deltas are ignored: counters only go up).
func (c *Counter) Add(delta int64) {
	if c == nil || delta <= 0 {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the value by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DurationBuckets are the default histogram bounds, in seconds:
// exponential from 10 µs to ~40 s, sized for query latencies.
var DurationBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10, 40,
}

// Histogram is a fixed-bucket histogram with a cumulative Prometheus
// exposition. Observations are lock-free atomics.
type Histogram struct {
	bounds []float64      // ascending upper bounds; +Inf implicit
	counts []atomic.Int64 // len(bounds)+1, per-bucket (non-cumulative)
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}
