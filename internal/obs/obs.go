// Package obs is the zero-dependency observability layer behind the
// serving path: a lock-striped metrics registry with Prometheus text
// exposition, a structured query-lifecycle tracer, a ring-buffer
// slow-query log, and phase-annotated cancellation errors.
//
// The package is deliberately self-contained (standard library only)
// so every layer of the system — optimizer, execution engine, plan
// cache, the root serving API and both CLIs — can depend on it without
// import cycles or third-party baggage.
//
// Design rules:
//
//   - Instrument handles (*Counter, *Gauge, *Histogram) are cheap
//     atomics obtained once from the Registry and then written to
//     lock-free. Their methods are nil-receiver safe, so partially
//     wired instrument bundles degrade to no-ops.
//   - The disabled path of every instrumented component is a single
//     branch-predictable nil check on the component's instrument
//     bundle (or on a nil *Trace / *SlowLog); no allocation, no atomic
//     traffic, no time syscalls.
//   - Traces are built by the goroutine serving the query; spans are
//     not safe for concurrent mutation and the engine attaches its
//     per-operator profile after execution completes, in plan order.
package obs

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
)

// registryShards is the number of lock stripes of a Registry. Metric
// families are few and handles are cached by callers, so the stripes
// only have to absorb concurrent get-or-create bursts at startup and
// the occasional dynamic series registration.
const registryShards = 16

// Label is one name/value pair attached to a metric series.
type Label struct {
	Key, Value string
}

// instrumentKind discriminates what a family holds.
type instrumentKind uint8

const (
	counterKind instrumentKind = iota
	gaugeKind
	gaugeFuncKind
	histogramKind
)

func (k instrumentKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind, gaugeFuncKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is every series sharing one metric name.
type family struct {
	name, help string
	kind       instrumentKind
	buckets    []float64 // histogram families only

	mu     sync.Mutex
	series map[string]*series // keyed by rendered label string
}

// series is one (name, labels) instrument.
type series struct {
	labels  string // rendered `{k="v",...}`, "" when unlabeled
	counter *Counter
	gauge   *Gauge
	gfn     func() float64
	hist    *Histogram
}

// Registry is a lock-striped collection of metric families. The zero
// value is not usable; call NewRegistry. All methods are safe for
// concurrent use; Counter/Gauge/Histogram are get-or-create and return
// the same handle for the same (name, labels) every time.
type Registry struct {
	shards [registryShards]struct {
		mu   sync.Mutex
		fams map[string]*family
	}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	for i := range r.shards {
		r.shards[i].fams = make(map[string]*family)
	}
	return r
}

// familyFor returns the family for name, creating it with the given
// kind on first use. Registering one name with two different kinds (or
// two bucket layouts) is a programming error and panics.
func (r *Registry) familyFor(name, help string, kind instrumentKind, buckets []float64) *family {
	h := fnv.New32a()
	h.Write([]byte(name))
	sh := &r.shards[h.Sum32()%registryShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f, ok := sh.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, buckets: buckets, series: make(map[string]*series)}
		sh.fams[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, kind, f.kind))
	}
	return f
}

// seriesFor returns the series for the rendered label set, creating it
// via mk on first use.
func (f *family) seriesFor(labels []Label, mk func() *series) *series {
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := mk()
	s.labels = key
	f.series[key] = s
	return s
}

// Counter returns the counter for (name, labels), registering it on
// first use. By convention counter names end in "_total".
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.familyFor(name, help, counterKind, nil)
	return f.seriesFor(labels, func() *series { return &series{counter: &Counter{}} }).counter
}

// Gauge returns the gauge for (name, labels), registering it on first
// use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.familyFor(name, help, gaugeKind, nil)
	return f.seriesFor(labels, func() *series { return &series{gauge: &Gauge{}} }).gauge
}

// GaugeFunc registers a gauge whose value is read from fn at
// exposition time — the "live gauge" shape used for views over
// existing counters (plan cache hit counts, resident entries).
// Re-registering the same (name, labels) keeps the first function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.familyFor(name, help, gaugeFuncKind, nil)
	f.seriesFor(labels, func() *series { return &series{gfn: fn} })
}

// Histogram returns the histogram for (name, labels), registering it
// with the given bucket upper bounds (ascending; +Inf is implicit) on
// first use. A nil buckets slice selects DurationBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DurationBuckets
	}
	f := r.familyFor(name, help, histogramKind, buckets)
	return f.seriesFor(labels, func() *series { return &series{hist: newHistogram(f.buckets)} }).hist
}

// renderLabels renders a label set as `{k="v",...}` with the keys
// sorted, escaping label values per the Prometheus text format.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes backslash, double quote and newline, the
// three characters the Prometheus text format requires escaping in
// label values.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes backslash and newline for HELP lines.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
