package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// SlowQueryEntry is one logged query: anything that ran past the
// slow-query threshold or failed.
type SlowQueryEntry struct {
	// Time is when the query finished.
	Time time.Time
	// Query is the query source text.
	Query string
	// Algorithm is the requested optimization algorithm.
	Algorithm string
	// Duration is the end-to-end serving time.
	Duration time.Duration
	// Rows is the result size (0 on error).
	Rows int
	// FlatRows is the root operator's logical (pre-dedup, pre-
	// projection) output size; on a factorized run it was counted, not
	// materialized. A large FlatRows/Rows ratio flags the result-heavy
	// queries factorization targets.
	FlatRows int64
	// Factorized reports that the run used the factorized
	// (answer-graph) execution path.
	Factorized bool
	// ShuffledRows is the run's total cross-node row movement;
	// ShuffledBytes its wire volume. Surfaced here (not only as trace
	// span attrs) so operators and the adaptive-repartitioning advisor
	// can see shuffle cost without a trace sink attached.
	ShuffledRows  int64
	ShuffledBytes int64
	// CacheHit reports that the plan came from the plan cache.
	CacheHit bool
	// Shared reports that the call never executed: it replayed another
	// identical in-flight call's broadcast (execution sharing).
	Shared bool
	// Err is the failure that ended the run, "" for a slow success.
	// Cancellations carry their query phase and cause (deadline vs.
	// manual cancel) via the engine's PhaseError annotations.
	Err string
	// Rejected distinguishes admission-control rejections (the system
	// refused to run the query) from queries that ran and failed.
	Rejected bool
	// Degraded lists the fallback-ladder steps a successful query took
	// (cache bypass, algorithm downgrades, node failover); empty for
	// the healthy path.
	Degraded []string
	// Failovers counts node operations this query served via failover
	// (replica scans of dead nodes, re-homed shuffle partitions).
	Failovers int64
	// Phases are the top-level trace phases with their durations.
	Phases []PhaseTiming
}

// String renders the entry as one log line.
func (e SlowQueryEntry) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %v %s", e.Time.Format(time.RFC3339), e.Duration.Round(time.Microsecond), e.Algorithm)
	switch {
	case e.Rejected:
		fmt.Fprintf(&b, " REJECTED %q", e.Err)
	case e.Err != "":
		fmt.Fprintf(&b, " ERROR %q", e.Err)
	default:
		fmt.Fprintf(&b, " rows=%d", e.Rows)
	}
	if e.Factorized {
		fmt.Fprintf(&b, " factorized(flat_rows=%d)", e.FlatRows)
	}
	if e.Err == "" {
		fmt.Fprintf(&b, " shuffled=%d rows/%d B", e.ShuffledRows, e.ShuffledBytes)
	}
	if e.CacheHit {
		b.WriteString(" cache=hit")
	}
	if e.Shared {
		b.WriteString(" exec=shared")
	}
	if len(e.Degraded) > 0 {
		fmt.Fprintf(&b, " DEGRADED[%s]", strings.Join(e.Degraded, "; "))
	}
	if e.Failovers > 0 {
		fmt.Fprintf(&b, " failovers=%d", e.Failovers)
	}
	for _, p := range e.Phases {
		fmt.Fprintf(&b, " %s=%v", p.Name, p.Dur.Round(time.Microsecond))
	}
	fmt.Fprintf(&b, " query=%q", condense(e.Query))
	return b.String()
}

// condense collapses the query text onto one line, truncated.
func condense(q string) string {
	q = strings.Join(strings.Fields(q), " ")
	const max = 200
	if len(q) > max {
		q = q[:max] + "..."
	}
	return q
}

// SlowLog is a fixed-capacity ring buffer of slow (or failed)
// queries. It is safe for concurrent use; methods on a nil *SlowLog
// are no-ops, the disabled value.
type SlowLog struct {
	mu        sync.Mutex
	threshold time.Duration
	buf       []SlowQueryEntry
	next      int    // ring position of the next write
	n         int    // valid entries (≤ len(buf))
	total     uint64 // entries ever recorded, including overwritten
}

// NewSlowLog returns a log keeping the last capacity entries at or
// over threshold. capacity <= 0 returns nil (disabled).
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity <= 0 {
		return nil
	}
	return &SlowLog{threshold: threshold, buf: make([]SlowQueryEntry, capacity)}
}

// Threshold returns the latency threshold.
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Record logs e if it qualifies — at or over the threshold, or failed
// — and reports whether it was kept.
func (l *SlowLog) Record(e SlowQueryEntry) bool {
	if l == nil || (e.Duration < l.threshold && e.Err == "") {
		return false
	}
	l.mu.Lock()
	l.buf[l.next] = e
	l.next = (l.next + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.total++
	l.mu.Unlock()
	return true
}

// Entries returns the retained entries, newest first.
func (l *SlowLog) Entries() []SlowQueryEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowQueryEntry, 0, l.n)
	for i := 1; i <= l.n; i++ {
		out = append(out, l.buf[(l.next-i+len(l.buf))%len(l.buf)])
	}
	return out
}

// Total returns how many entries were ever recorded, including ones
// the ring has since overwritten.
func (l *SlowLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
