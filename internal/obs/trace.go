package obs

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Attr is one key/value annotation on a span (cardinalities, shuffle
// volumes, cache outcomes). Values are preformatted strings: traces
// are a human- and test-facing artifact, not a wire format.
type Attr struct {
	Key, Value string
}

// Span is one timed step of a query's lifecycle — a serving phase
// (parse, canonicalize, cache lookup, stats, enumerate, execute) or
// one plan operator of the execution. Spans form a tree mirroring the
// work's structure; children appear in the order the phases ran (plan
// child order for operator spans, never completion order).
//
// A span is owned by the goroutine serving the query; it is not safe
// for concurrent mutation. All methods are nil-receiver safe, so the
// tracing-disabled path passes nil spans through unconditionally.
type Span struct {
	Name string
	// Start is when the span began; zero for spans reconstructed from
	// an execution profile (only their duration is known).
	Start time.Time
	// Dur is the span's wall time. For phase spans it includes nested
	// children; for operator spans it is the operator's own time
	// (children are evaluated before the operator's own work starts).
	Dur      time.Duration
	Attrs    []Attr
	Children []*Span
}

// Child starts a nested span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: time.Now()}
	s.Children = append(s.Children, c)
	return c
}

// Attach appends an already-built span subtree (the engine's operator
// profile) as a child.
func (s *Span) Attach(c *Span) {
	if s == nil || c == nil {
		return
	}
	s.Children = append(s.Children, c)
}

// End stamps the span's duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.Dur = time.Since(s.Start)
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// SetAttrInt annotates the span with an integer value.
func (s *Span) SetAttrInt(key string, v int64) {
	s.SetAttr(key, strconv.FormatInt(v, 10))
}

// SetAttrFloat annotates the span with a float value.
func (s *Span) SetAttrFloat(key string, v float64) {
	s.SetAttr(key, strconv.FormatFloat(v, 'g', 4, 64))
}

// Attr returns the value of the named attribute and whether it is set.
func (s *Span) Attr(key string) (string, bool) {
	if s == nil {
		return "", false
	}
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// Find returns the first span named name in a depth-first walk of the
// subtree rooted at s, or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// Trace is the full lifecycle record of one serving call. Root's
// direct children are the serving phases in order.
type Trace struct {
	// Query is the query source text (or a placeholder when the call
	// started from a pre-parsed query).
	Query string
	// Algorithm is the requested optimization algorithm.
	Algorithm string
	Start     time.Time
	Duration  time.Duration
	// Err records the failure that ended the run, "" on success.
	Err  string
	Root *Span
}

// NewTrace starts a trace for one serving call.
func NewTrace(query string) *Trace {
	now := time.Now()
	return &Trace{Query: query, Start: now, Root: &Span{Name: "run", Start: now}}
}

// Span starts a new top-level phase span. Methods on a nil *Trace are
// no-ops returning nil spans, so the disabled path needs no branches
// at call sites.
func (t *Trace) Span(name string) *Span {
	if t == nil {
		return nil
	}
	return t.Root.Child(name)
}

// Find returns the first span with the given name, or nil.
func (t *Trace) Find(name string) *Span {
	if t == nil {
		return nil
	}
	return t.Root.Find(name)
}

// Finish closes the trace, stamping the total duration and the error.
func (t *Trace) Finish(err error) {
	if t == nil {
		return
	}
	t.Root.End()
	t.Duration = t.Root.Dur
	if err != nil {
		t.Err = err.Error()
	}
}

// PhaseTiming is one top-level phase's name and duration — the
// condensed trace shape stored in slow-query log entries.
type PhaseTiming struct {
	Name string
	Dur  time.Duration
}

// Phases returns the top-level phase timings in execution order.
func (t *Trace) Phases() []PhaseTiming {
	if t == nil || t.Root == nil {
		return nil
	}
	out := make([]PhaseTiming, 0, len(t.Root.Children))
	for _, c := range t.Root.Children {
		out = append(out, PhaseTiming{Name: c.Name, Dur: c.Dur})
	}
	return out
}

// Format renders the trace as an indented tree.
func (t *Trace) Format() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s (%v)", t.Algorithm, t.Duration.Round(time.Microsecond))
	if t.Err != "" {
		fmt.Fprintf(&b, " error: %s", t.Err)
	}
	b.WriteByte('\n')
	var walk func(s *Span, indent string)
	walk = func(s *Span, indent string) {
		fmt.Fprintf(&b, "%s%s %v", indent, s.Name, s.Dur.Round(time.Microsecond))
		for _, a := range s.Attrs {
			fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
		}
		b.WriteByte('\n')
		for _, c := range s.Children {
			walk(c, indent+"  ")
		}
	}
	for _, c := range t.Root.Children {
		walk(c, "  ")
	}
	return b.String()
}

// PhaseError annotates a cancellation (or deadline expiry) with the
// query phase it interrupted, so traces and slow-query log entries can
// tell a client cancel from a deadline and say where the query died.
// It unwraps to the context's cause, keeping errors.Is(err,
// context.Canceled / context.DeadlineExceeded) working.
type PhaseError struct {
	Phase string
	Cause error
}

func (e *PhaseError) Error() string {
	return "query phase " + e.Phase + ": " + e.Cause.Error()
}

func (e *PhaseError) Unwrap() error { return e.Cause }

// Canceled returns nil while ctx is live, and a *PhaseError wrapping
// context.Cause(ctx) once it is done — the standard shape of every
// cancellation poll in the engine.
func Canceled(ctx context.Context, phase string) error {
	if ctx.Err() == nil {
		return nil
	}
	cause := context.Cause(ctx)
	if cause == nil {
		cause = ctx.Err()
	}
	return &PhaseError{Phase: phase, Cause: cause}
}
