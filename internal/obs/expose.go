package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteMetrics writes every registered metric in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, series
// within a family sorted by label string, histogram buckets cumulative
// with an explicit +Inf bucket plus _sum and _count series. The output
// is deterministic for a fixed set of metric values, which the golden
// exposition test relies on.
func (r *Registry) WriteMetrics(w io.Writer) error {
	if r == nil {
		return fmt.Errorf("obs: nil registry")
	}
	var fams []*family
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, f := range sh.fams {
			fams = append(fams, f)
		}
		sh.mu.Unlock()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(w io.Writer) error {
	f.mu.Lock()
	ss := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		ss = append(ss, s)
	}
	f.mu.Unlock()
	sort.Slice(ss, func(i, j int) bool { return ss[i].labels < ss[j].labels })
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}
	for _, s := range ss {
		var err error
		switch f.kind {
		case counterKind:
			_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.counter.Value())
		case gaugeKind:
			_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.gauge.Value())
		case gaugeFuncKind:
			_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(s.gfn()))
		case histogramKind:
			err = writeHistogram(w, f.name, s)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one histogram series: cumulative buckets with
// le labels, then _sum and _count. The le label is appended to the
// series' own labels.
func writeHistogram(w io.Writer, name string, s *series) error {
	h := s.hist
	withLE := func(le string) string {
		if s.labels == "" {
			return `{le="` + le + `"}`
		}
		return s.labels[:len(s.labels)-1] + `,le="` + le + `"}`
	}
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(formatFloat(b)), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE("+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, s.labels, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, h.Count())
	return err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
