package obs

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestNilTraceAndSpanAreNoops(t *testing.T) {
	var tr *Trace
	sp := tr.Span("parse")
	if sp != nil {
		t.Fatal("nil trace must hand out nil spans")
	}
	sp.SetAttr("k", "v")
	sp.SetAttrInt("n", 1)
	sp.SetAttrFloat("f", 1.5)
	sp.End()
	sp.Attach(&Span{Name: "x"})
	if c := sp.Child("child"); c != nil {
		t.Error("nil span must hand out nil children")
	}
	if _, ok := sp.Attr("k"); ok {
		t.Error("nil span has no attrs")
	}
	if sp.Find("x") != nil || tr.Find("x") != nil {
		t.Error("nil find must return nil")
	}
	tr.Finish(errors.New("boom"))
	if tr.Format() != "" || tr.Phases() != nil {
		t.Error("nil trace must format empty")
	}
}

func TestTraceTree(t *testing.T) {
	tr := NewTrace("SELECT ?x WHERE { ?x <p> ?y }")
	tr.Algorithm = "TD-CMD"
	parse := tr.Span("parse")
	parse.End()
	exec := tr.Span("execute")
	join := &Span{Name: "op:BroadcastJoin", Dur: 3 * time.Millisecond}
	join.SetAttrInt("rows", 42)
	join.Attach(&Span{Name: "op:Scan"})
	exec.Attach(join)
	exec.End()
	tr.Finish(nil)

	if tr.Duration <= 0 {
		t.Error("Finish must stamp a positive duration")
	}
	if tr.Err != "" {
		t.Errorf("Err = %q, want empty", tr.Err)
	}
	phases := tr.Phases()
	if len(phases) != 2 || phases[0].Name != "parse" || phases[1].Name != "execute" {
		t.Fatalf("phases = %+v, want [parse execute]", phases)
	}
	if tr.Find("op:Scan") == nil {
		t.Error("Find must reach nested operator spans")
	}
	if v, ok := tr.Find("op:BroadcastJoin").Attr("rows"); !ok || v != "42" {
		t.Errorf("rows attr = %q,%v want 42,true", v, ok)
	}
	out := tr.Format()
	for _, want := range []string{"trace TD-CMD", "parse", "execute", "op:BroadcastJoin", "rows=42", "    op:Scan"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q in:\n%s", want, out)
		}
	}
}

func TestTraceFinishError(t *testing.T) {
	tr := NewTrace("q")
	tr.Finish(errors.New("boom"))
	if tr.Err != "boom" {
		t.Errorf("Err = %q, want boom", tr.Err)
	}
	if !strings.Contains(tr.Format(), "error: boom") {
		t.Error("Format must surface the error")
	}
}

func TestCanceledLiveContext(t *testing.T) {
	if err := Canceled(context.Background(), "join"); err != nil {
		t.Fatalf("live context: got %v", err)
	}
}

func TestCanceledDistinguishesCauses(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Canceled(ctx, "join")
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("manual cancel: got %v, want wrap of context.Canceled", err)
	}
	var pe *PhaseError
	if !errors.As(err, &pe) || pe.Phase != "join" {
		t.Fatalf("want PhaseError{Phase: join}, got %v", err)
	}
	if !strings.Contains(err.Error(), "query phase join") {
		t.Errorf("error text %q must name the phase", err)
	}

	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	derr := Canceled(dctx, "execute")
	if !errors.Is(derr, context.DeadlineExceeded) {
		t.Fatalf("deadline: got %v, want wrap of context.DeadlineExceeded", derr)
	}
	if errors.Is(derr, context.Canceled) {
		t.Error("deadline expiry must not read as a manual cancel")
	}

	cause := errors.New("client went away")
	cctx, ccancel := context.WithCancelCause(context.Background())
	ccancel(cause)
	if cerr := Canceled(cctx, "stats"); !errors.Is(cerr, cause) {
		t.Fatalf("cause: got %v, want wrap of %v", cerr, cause)
	}
}
