package plan

import (
	"strings"
	"testing"

	"sparqlopt/internal/bitset"
	"sparqlopt/internal/cost"
)

var p = cost.Default

func TestScanNode(t *testing.T) {
	n := NewScan(3, 100, p)
	if n.Set != bitset.Single(3) || n.Alg != Scan || n.TP != 3 {
		t.Errorf("scan node = %+v", n)
	}
	if n.Cost != p.Scan(100) {
		t.Errorf("Cost = %v", n.Cost)
	}
	if err := n.Validate(); err != nil {
		t.Error(err)
	}
	if n.Depth() != 1 || n.Operators() != 0 {
		t.Error("scan depth/operators wrong")
	}
}

func TestJoinCosting(t *testing.T) {
	a := NewScan(0, 100, p)
	b := NewScan(1, 200, p)
	j := NewJoin(RepartitionJoin, "x", []*Node{a, b}, 50, p)
	wantOp := p.Repartition([]float64{100, 200}, 50)
	if j.OpCost != wantOp {
		t.Errorf("OpCost = %v, want %v", j.OpCost, wantOp)
	}
	// Eq. 3: max child cost + op cost.
	if j.Cost != b.Cost+wantOp {
		t.Errorf("Cost = %v, want %v", j.Cost, b.Cost+wantOp)
	}
	if j.Set != bitset.Of(0, 1) {
		t.Errorf("Set = %v", j.Set)
	}
	if err := j.Validate(); err != nil {
		t.Error(err)
	}
}

func TestMultiwayJoin(t *testing.T) {
	children := []*Node{NewScan(0, 10, p), NewScan(1, 20, p), NewScan(2, 30, p)}
	j := NewJoin(LocalJoin, "v", children, 5, p)
	if len(j.Children) != 3 || j.Set != bitset.Of(0, 1, 2) {
		t.Errorf("join = %+v", j)
	}
	if j.Depth() != 2 || j.Operators() != 1 {
		t.Errorf("Depth=%d Operators=%d", j.Depth(), j.Operators())
	}
	if got := len(j.Leaves()); got != 3 {
		t.Errorf("Leaves = %d", got)
	}
	if err := j.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBushyPlanDepth(t *testing.T) {
	l := NewJoin(LocalJoin, "a", []*Node{NewScan(0, 10, p), NewScan(1, 10, p)}, 5, p)
	r := NewJoin(LocalJoin, "b", []*Node{NewScan(2, 10, p), NewScan(3, 10, p)}, 5, p)
	root := NewJoin(BroadcastJoin, "c", []*Node{l, r}, 2, p)
	if root.Depth() != 3 || root.Operators() != 3 {
		t.Errorf("Depth=%d Operators=%d", root.Depth(), root.Operators())
	}
	if err := root.Validate(); err != nil {
		t.Error(err)
	}
	out := root.Format()
	for _, want := range []string{"⋈B on ?c", "⋈L on ?a", "scan tp1", "scan tp4"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestNewJoinPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"scan alg", func() { NewJoin(Scan, "x", []*Node{NewScan(0, 1, p), NewScan(1, 1, p)}, 1, p) }},
		{"one child", func() { NewJoin(LocalJoin, "x", []*Node{NewScan(0, 1, p)}, 1, p) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	a := NewScan(0, 10, p)
	b := NewScan(0, 10, p) // same pattern: overlapping
	j := &Node{Set: bitset.Of(0), Alg: LocalJoin, Children: []*Node{a, b}}
	if err := j.Validate(); err == nil {
		t.Error("overlap not detected")
	}
}

func TestValidateCatchesBadCover(t *testing.T) {
	a := NewScan(0, 10, p)
	b := NewScan(1, 10, p)
	j := &Node{Set: bitset.Of(0, 1, 2), Alg: LocalJoin, Children: []*Node{a, b}, Cost: a.Cost}
	if err := j.Validate(); err == nil {
		t.Error("bad cover not detected")
	}
}

func TestValidateCatchesBadCost(t *testing.T) {
	a := NewScan(0, 10, p)
	b := NewScan(1, 10, p)
	j := NewJoin(LocalJoin, "x", []*Node{a, b}, 5, p)
	j.Cost += 1
	if err := j.Validate(); err == nil {
		t.Error("cost inconsistency not detected")
	}
}

func TestAlgorithmString(t *testing.T) {
	for alg, want := range map[Algorithm]string{Scan: "scan", LocalJoin: "⋈L", BroadcastJoin: "⋈B", RepartitionJoin: "⋈R"} {
		if alg.String() != want {
			t.Errorf("%d.String() = %q", alg, alg.String())
		}
	}
}

func TestDOT(t *testing.T) {
	l := NewJoin(LocalJoin, "a", []*Node{NewScan(0, 10, p), NewScan(1, 10, p)}, 5, p)
	root := NewJoin(BroadcastJoin, "c", []*Node{l, NewScan(2, 20, p)}, 2, p)
	out := root.DOT()
	for _, want := range []string{"digraph plan", "JOIN_B ?c", "JOIN_L ?a", "tp1", "tp3", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	// One node line per operator, one edge per child link.
	if got := strings.Count(out, "label="); got != 5 {
		t.Errorf("DOT has %d nodes, want 5", got)
	}
	if got := strings.Count(out, "->"); got != 4 {
		t.Errorf("DOT has %d edges, want 4", got)
	}
}
