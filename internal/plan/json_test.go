package plan

import (
	"encoding/json"
	"strings"
	"testing"
)

func samplePlan() *Node {
	l := NewJoin(LocalJoin, "a", []*Node{NewScan(0, 10, p), NewScan(1, 20, p)}, 5, p)
	return NewJoin(BroadcastJoin, "c", []*Node{l, NewScan(2, 30, p)}, 2, p)
}

func TestJSONRoundTrip(t *testing.T) {
	orig := samplePlan()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var got Node
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Set != orig.Set || got.Cost != orig.Cost || got.Alg != orig.Alg {
		t.Errorf("round trip changed the root: %+v", got)
	}
	if got.Format() != orig.Format() {
		t.Errorf("round trip changed the tree:\n%s\nvs\n%s", got.Format(), orig.Format())
	}
	if err := got.Validate(); err != nil {
		t.Error(err)
	}
}

func TestJSONContent(t *testing.T) {
	data, err := json.Marshal(samplePlan())
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"alg":"broadcast"`, `"alg":"local"`, `"alg":"scan"`, `"joinVar":"c"`, `"tp":2`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %s:\n%s", want, s)
		}
	}
}

func TestJSONUnmarshalErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"bad alg", `{"alg":"nope"}`},
		{"scan without tp", `{"alg":"scan"}`},
		{"tp out of range", `{"alg":"scan","tp":99}`},
		{"scan with children", `{"alg":"scan","tp":0,"children":[{"alg":"scan","tp":1}]}`},
		{"join one child", `{"alg":"local","children":[{"alg":"scan","tp":0}]}`},
		{"overlapping children", `{"alg":"local","children":[{"alg":"scan","tp":0},{"alg":"scan","tp":0}]}`},
		{"not json", `{{{`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var n Node
			if err := json.Unmarshal([]byte(c.in), &n); err == nil {
				t.Errorf("accepted %s", c.in)
			}
		})
	}
}
