package plan

import (
	"encoding/json"
	"fmt"

	"sparqlopt/internal/bitset"
)

// jsonNode is the serialized form of a plan operator.
type jsonNode struct {
	Alg       string      `json:"alg"`
	TP        *int        `json:"tp,omitempty"`
	JoinVar   string      `json:"joinVar,omitempty"`
	Card      float64     `json:"card"`
	Factorize bool        `json:"factorize,omitempty"`
	OpCost    float64     `json:"opCost"`
	Cost      float64     `json:"cost"`
	Children  []*jsonNode `json:"children,omitempty"`
}

var algNames = map[Algorithm]string{
	Scan:            "scan",
	LocalJoin:       "local",
	BroadcastJoin:   "broadcast",
	RepartitionJoin: "repartition",
}

// MarshalJSON serializes the plan tree. The pattern-set bitmap is
// derivable from the leaves and is not stored.
func (n *Node) MarshalJSON() ([]byte, error) {
	return json.Marshal(toJSON(n))
}

func toJSON(n *Node) *jsonNode {
	j := &jsonNode{
		Alg:       algNames[n.Alg],
		JoinVar:   n.JoinVar,
		Card:      n.Card,
		Factorize: n.Factorize,
		OpCost:    n.OpCost,
		Cost:      n.Cost,
	}
	if n.Alg == Scan {
		tp := n.TP
		j.TP = &tp
	}
	for _, ch := range n.Children {
		j.Children = append(j.Children, toJSON(ch))
	}
	return j
}

// UnmarshalJSON reconstructs a plan tree, recomputing the pattern sets
// from the leaves and validating the structure.
func (n *Node) UnmarshalJSON(data []byte) error {
	var j jsonNode
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	rebuilt, err := fromJSON(&j)
	if err != nil {
		return err
	}
	*n = *rebuilt
	return n.Validate()
}

func fromJSON(j *jsonNode) (*Node, error) {
	var alg Algorithm
	found := false
	for a, name := range algNames {
		if name == j.Alg {
			alg, found = a, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("plan: unknown algorithm %q", j.Alg)
	}
	n := &Node{Alg: alg, JoinVar: j.JoinVar, Card: j.Card, Factorize: j.Factorize, OpCost: j.OpCost, Cost: j.Cost}
	if alg == Scan {
		if j.TP == nil {
			return nil, fmt.Errorf("plan: scan without tp")
		}
		if *j.TP < 0 || *j.TP >= bitset.MaxPatterns {
			return nil, fmt.Errorf("plan: tp %d out of range", *j.TP)
		}
		n.TP = *j.TP
		n.Set = bitset.Single(n.TP)
		if len(j.Children) != 0 {
			return nil, fmt.Errorf("plan: scan with children")
		}
		return n, nil
	}
	for _, cj := range j.Children {
		ch, err := fromJSON(cj)
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, ch)
		n.Set = n.Set.Union(ch.Set)
	}
	return n, nil
}
