// Package plan defines the physical query plans of paper §II-D:
// labeled bushy trees whose leaves scan the bindings of triple
// patterns and whose inner nodes are k-way join operators (k ≥ 2)
// labeled with one of the three join algorithms — local (⋈_L),
// broadcast (⋈_B), repartition (⋈_R). Plan cost follows Eq. 3:
// the cost of a plan is the maximal child cost plus the operator cost,
// modeling concurrent subquery execution.
package plan

import (
	"fmt"
	"strings"

	"sparqlopt/internal/bitset"
	"sparqlopt/internal/cost"
)

// Algorithm identifies the operator implementing a plan node.
type Algorithm uint8

const (
	// Scan matches the bindings of a single triple pattern.
	Scan Algorithm = iota
	// LocalJoin joins co-partitioned inputs with no communication.
	LocalJoin
	// BroadcastJoin replicates the k−1 smaller inputs to every node
	// holding the largest input.
	BroadcastJoin
	// RepartitionJoin reshuffles every input on the shared join variable.
	RepartitionJoin
)

// String returns the paper's notation for the operator.
func (a Algorithm) String() string {
	switch a {
	case Scan:
		return "scan"
	case LocalJoin:
		return "⋈L"
	case BroadcastJoin:
		return "⋈B"
	default:
		return "⋈R"
	}
}

// Node is one operator of a bushy plan. A Node is immutable once
// built; Cost and Card are fixed at construction.
type Node struct {
	// Set is the subquery this node produces: the union of the triple
	// patterns of all descendant leaves.
	Set bitset.TPSet
	// Alg is the operator.
	Alg Algorithm
	// TP is the triple-pattern index for Scan nodes.
	TP int
	// JoinVar is the common join variable of a join node (the v_j of
	// the connected multi-division that produced it).
	JoinVar string
	// Children are the k inputs of a join node (nil for scans).
	Children []*Node
	// Card is the estimated output cardinality.
	Card float64
	// Factorize marks a join whose estimated fanout cleared the cost
	// model's factorization gate (cost.Params.ShouldFactorize): the
	// engine represents its result as a factorized answer graph —
	// shared column groups with link vectors — instead of flattened
	// rows. Advisory only: it never changes Cost or Card, and the
	// engine applies it where the representation pays (the plan root,
	// whose result feeds projection).
	Factorize bool
	// OpCost is the cost of this operator alone (Eq. 4).
	OpCost float64
	// Cost is the cumulative plan cost (Eq. 3):
	// max over children of Cost + OpCost.
	Cost float64
}

// NewScan builds a leaf scanning triple pattern tp.
func NewScan(tp int, card float64, p cost.Params) *Node {
	c := p.Scan(card)
	return &Node{Set: bitset.Single(tp), Alg: Scan, TP: tp, Card: card, OpCost: c, Cost: c}
}

// NewJoin builds a k-way join node over the children using the given
// algorithm, joining on joinVar, producing card results. It panics if
// alg is Scan or fewer than two children are supplied — programming
// errors, not data errors.
func NewJoin(alg Algorithm, joinVar string, children []*Node, card float64, p cost.Params) *Node {
	if alg == Scan {
		panic("plan: NewJoin with Scan algorithm")
	}
	if len(children) < 2 {
		panic("plan: join needs at least two children")
	}
	var set bitset.TPSet
	inputs := make([]float64, len(children))
	maxChild, sumIn := 0.0, 0.0
	for i, ch := range children {
		set = set.Union(ch.Set)
		inputs[i] = ch.Card
		sumIn += ch.Card
		if ch.Cost > maxChild {
			maxChild = ch.Cost
		}
	}
	var op float64
	switch alg {
	case LocalJoin:
		op = p.Local(inputs, card)
	case BroadcastJoin:
		op = p.Broadcast(inputs, card)
	case RepartitionJoin:
		op = p.Repartition(inputs, card)
	}
	return &Node{
		Set:       set,
		Alg:       alg,
		JoinVar:   joinVar,
		Children:  children,
		Card:      card,
		Factorize: p.ShouldFactorize(sumIn, card),
		OpCost:    op,
		Cost:      maxChild + op,
	}
}

// JoinCost returns the operator cost (Eq. 4) and cumulative plan cost
// (Eq. 3) of the k-way join candidate (alg, children, card) without
// building the Node. The arithmetic matches NewJoin exactly (same
// fold order over children), so a Node later built from the same
// candidate carries bit-identical costs. The enumerator's hot path
// uses it to discard losing candidates allocation-free.
func JoinCost(alg Algorithm, children []*Node, card float64, p cost.Params) (op, total float64) {
	var sumIn, maxIn, maxChild float64
	for _, ch := range children {
		sumIn += ch.Card
		if ch.Card > maxIn {
			maxIn = ch.Card
		}
		if ch.Cost > maxChild {
			maxChild = ch.Cost
		}
	}
	switch alg {
	case LocalJoin:
		op = p.LocalFromStats(sumIn, card)
	case BroadcastJoin:
		op = p.BroadcastFromStats(sumIn, maxIn, card)
	case RepartitionJoin:
		op = p.RepartitionFromStats(sumIn, card)
	default:
		panic("plan: JoinCost with Scan algorithm")
	}
	return op, maxChild + op
}

// Leaves returns the scan nodes of the plan in left-to-right order.
func (n *Node) Leaves() []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(m *Node) {
		if m.Alg == Scan {
			out = append(out, m)
			return
		}
		for _, ch := range m.Children {
			walk(ch)
		}
	}
	walk(n)
	return out
}

// Depth returns the number of operator levels (a scan has depth 1).
func (n *Node) Depth() int {
	if n.Alg == Scan {
		return 1
	}
	max := 0
	for _, ch := range n.Children {
		if d := ch.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// Operators counts the join operators in the plan.
func (n *Node) Operators() int {
	if n.Alg == Scan {
		return 0
	}
	total := 1
	for _, ch := range n.Children {
		total += ch.Operators()
	}
	return total
}

// Validate checks the structural invariants of a plan: children's
// pattern sets are disjoint and union to the parent's, scans are
// singletons, join nodes have ≥ 2 children, and costs are consistent
// with Eq. 3. It is used by tests and returns the first violation.
func (n *Node) Validate() error {
	switch {
	case n.Alg == Scan:
		if len(n.Children) != 0 {
			return fmt.Errorf("plan: scan with children")
		}
		if n.Set != bitset.Single(n.TP) {
			return fmt.Errorf("plan: scan set %v does not match TP %d", n.Set, n.TP)
		}
		return nil
	case len(n.Children) < 2:
		return fmt.Errorf("plan: join %v with %d children", n.Set, len(n.Children))
	}
	var union bitset.TPSet
	maxChild := 0.0
	for _, ch := range n.Children {
		if union.Overlaps(ch.Set) {
			return fmt.Errorf("plan: overlapping children at %v", n.Set)
		}
		union = union.Union(ch.Set)
		if ch.Cost > maxChild {
			maxChild = ch.Cost
		}
		if err := ch.Validate(); err != nil {
			return err
		}
	}
	if union != n.Set {
		return fmt.Errorf("plan: children cover %v, node claims %v", union, n.Set)
	}
	if diff := n.Cost - (maxChild + n.OpCost); diff > 1e-6 || diff < -1e-6 {
		return fmt.Errorf("plan: cost %v inconsistent with max-child %v + op %v", n.Cost, maxChild, n.OpCost)
	}
	return nil
}

// Format renders the plan as an indented ASCII tree in the style of
// the paper's Fig. 3.
func (n *Node) Format() string {
	var b strings.Builder
	var walk func(m *Node, indent string)
	walk = func(m *Node, indent string) {
		if m.Alg == Scan {
			fmt.Fprintf(&b, "%sscan tp%d (card=%.4g, cost=%.4g)\n", indent, m.TP+1, m.Card, m.Cost)
			return
		}
		fmt.Fprintf(&b, "%s%s on ?%s (card=%.4g, cost=%.4g)\n", indent, m.Alg, m.JoinVar, m.Card, m.Cost)
		for _, ch := range m.Children {
			walk(ch, indent+"  ")
		}
	}
	walk(n, "")
	return b.String()
}
