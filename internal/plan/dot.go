package plan

import (
	"fmt"
	"strings"
)

// DOT renders the plan in Graphviz dot syntax, one box per operator,
// in the style of the paper's Fig. 3 plan drawings. Scans show their
// triple-pattern number; joins show the algorithm and join variable.
func (n *Node) DOT() string {
	var b strings.Builder
	b.WriteString("digraph plan {\n  node [shape=box, fontname=\"Helvetica\"];\n")
	id := 0
	var walk func(m *Node) int
	walk = func(m *Node) int {
		me := id
		id++
		var label string
		if m.Alg == Scan {
			label = fmt.Sprintf("tp%d\\ncard=%.4g", m.TP+1, m.Card)
		} else {
			label = fmt.Sprintf("%s ?%s\\ncard=%.4g cost=%.4g", dotAlg(m.Alg), m.JoinVar, m.Card, m.Cost)
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\"];\n", me, label)
		for _, ch := range m.Children {
			c := walk(ch)
			fmt.Fprintf(&b, "  n%d -> n%d;\n", me, c)
		}
		return me
	}
	walk(n)
	b.WriteString("}\n")
	return b.String()
}

// dotAlg avoids non-ASCII join symbols in dot labels.
func dotAlg(a Algorithm) string {
	switch a {
	case LocalJoin:
		return "JOIN_L"
	case BroadcastJoin:
		return "JOIN_B"
	default:
		return "JOIN_R"
	}
}
