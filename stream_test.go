package sparqlopt

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/workload/lubm"
	"sparqlopt/internal/workload/watdiv"
)

// drainSorted collects a stream into copied rows and sorts them like
// Run does, so the two paths can be compared bit for bit.
func drainSorted(t *testing.T, rows *Rows) [][]TermID {
	t.Helper()
	var out [][]TermID
	for rows.Next() {
		out = append(out, append([]TermID{}, rows.Row()...))
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("stream failed: %v", err)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

func equalRowSets(a, b [][]TermID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestRunStreamMatchesRun is the redesign's bit-identity gate: for
// every LUBM and bound-WatDiv benchmark query, at parallelism 1 and 4,
// the sorted stream and the materialized result are identical.
func TestRunStreamMatchesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline sweep")
	}
	lds := lubm.Generate(lubm.Config{Universities: 2, Seed: 1, Compact: true})
	wds := watdiv.GenerateData(watdiv.DataConfig{Scale: 200, Seed: 1})

	type namedQuery struct {
		name string
		q    *Query
	}
	type workload struct {
		label   string
		ds      *Dataset
		queries []namedQuery
	}
	var lqs []namedQuery
	for _, name := range lubm.QueryNames {
		lqs = append(lqs, namedQuery{name, lubm.Query(name)})
	}
	var wqs []namedQuery
	for _, tpl := range watdiv.Templates(1) {
		if tpl.Query == nil || len(tpl.Query.Patterns) < 2 {
			continue
		}
		// Binding the walk's start variable can disconnect the join
		// graph; those templates are unplannable without Cartesian
		// products (same filter the engine benchmark applies).
		q := tpl.Bind(wds, 1)
		if jg, err := querygraph.NewJoinGraph(q); err != nil || !jg.Connected(jg.All()) {
			continue
		}
		wqs = append(wqs, namedQuery{fmt.Sprintf("W%d", tpl.ID), q})
		if len(wqs) == 5 {
			break
		}
	}
	for _, wl := range []workload{{"lubm", lds, lqs}, {"watdiv", wds, wqs}} {
		for _, par := range []int{1, 4} {
			sys, err := Open(wl.ds, WithNodes(4), WithParallelism(par))
			if err != nil {
				t.Fatal(err)
			}
			for _, nq := range wl.queries {
				want, err := sys.RunQuery(context.Background(), nq.q)
				if err != nil {
					t.Fatalf("%s/%s P=%d: Run: %v", wl.label, nq.name, par, err)
				}
				rows, err := sys.RunStreamQuery(context.Background(), nq.q)
				if err != nil {
					t.Fatalf("%s/%s P=%d: RunStream: %v", wl.label, nq.name, par, err)
				}
				got := drainSorted(t, rows)
				if !equalRowSets(got, want.Rows) {
					t.Errorf("%s/%s P=%d: stream and Run disagree (%d vs %d rows)",
						wl.label, nq.name, par, len(got), len(want.Rows))
				}
				if res := rows.Result(); res == nil || res.Returned != int64(len(want.Rows)) {
					t.Errorf("%s/%s P=%d: stream Result.Returned = %v, want %d",
						wl.label, nq.name, par, res, len(want.Rows))
				}
			}
			sys.Close()
		}
	}
}

// TestRunStreamMatchesRunFactorized repeats the bit-identity check
// with an aggressive factorization gate, so the stream's lazy
// flattening of answer-graph roots is on the line.
func TestRunStreamMatchesRunFactorized(t *testing.T) {
	ds := lubm.Generate(lubm.Config{Universities: 1, Seed: 1, Compact: true})
	sys, err := Open(ds, WithNodes(4), WithFactorization(0.25))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	var sawFactorized bool
	for _, name := range lubm.QueryNames {
		q := lubm.Query(name)
		want, err := sys.RunQuery(context.Background(), q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rows, err := sys.RunStreamQuery(context.Background(), q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := drainSorted(t, rows)
		if !equalRowSets(got, want.Rows) {
			t.Errorf("%s: factorized stream and Run disagree (%d vs %d rows)", name, len(got), len(want.Rows))
		}
		if res := rows.Result(); res != nil && res.Factorized {
			sawFactorized = true
		}
	}
	if !sawFactorized {
		t.Error("no query took the factorized path; the gate is not exercising lazy flattening")
	}
}

// TestExecutionSharingSingleExecution is the sharing acceptance test:
// with a leader mid-stream, N concurrent identical calls produce
// exactly one engine execution, and every caller gets the same rows.
func TestExecutionSharingSingleExecution(t *testing.T) {
	ds := lubm.Generate(lubm.Config{Universities: 1, Seed: 1, Compact: true})
	sys, err := Open(ds, WithNodes(4), WithExecutionSharing())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	const src = `PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
		SELECT ?x ?y WHERE { ?x ub:advisor ?y . }`

	leader, err := sys.RunStream(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	// The entry is in flight until the leader's stream ends; followers
	// joining now must not execute.
	const followers = 4
	var wg sync.WaitGroup
	results := make([]*ExecResult, followers)
	errs := make([]error, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = sys.Run(context.Background(), src)
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sys.ShareStats().Follows < followers {
		if time.Now().After(deadline) {
			t.Fatalf("followers never joined: %+v", sys.ShareStats())
		}
		time.Sleep(time.Millisecond)
	}
	want := drainSorted(t, leader)
	wg.Wait()

	for i := 0; i < followers; i++ {
		if errs[i] != nil {
			t.Fatalf("follower %d: %v", i, errs[i])
		}
		if !equalRowSets(results[i].Rows, want) {
			t.Fatalf("follower %d rows differ from leader", i)
		}
		if !results[i].CacheInfo.SharedExec {
			t.Errorf("follower %d not marked SharedExec: %s", i, results[i])
		}
		if !strings.Contains(results[i].String(), "exec=shared") {
			t.Errorf("follower %d String() misses exec=shared: %s", i, results[i])
		}
	}
	st := sys.ShareStats()
	if st.Leads != 1 || st.Follows != followers || st.Fallbacks != 0 || st.Aborted != 0 {
		t.Fatalf("share counters = %+v, want 1 lead / %d follows", st, followers)
	}
}

// TestExecutionSharingFallback: a follower whose leader errors out
// before publishing anything silently re-executes.
func TestExecutionSharingFallback(t *testing.T) {
	ds := NewDataset()
	for i := 0; i < 50; i++ {
		ds.Add(fmt.Sprintf("s%d", i), "p", fmt.Sprintf("o%d", i%7))
	}
	sys, err := Open(ds, WithNodes(2), WithExecutionSharing())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	const src = `SELECT * WHERE { ?s <p> ?o . }`
	leader, err := sys.RunStream(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *ExecResult, 1)
	go func() {
		res, err := sys.Run(context.Background(), src)
		if err != nil {
			t.Errorf("fallback Run: %v", err)
		}
		done <- res
	}()
	deadline := time.Now().Add(5 * time.Second)
	for sys.ShareStats().Follows < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("follower never joined: %+v", sys.ShareStats())
		}
		time.Sleep(time.Millisecond)
	}
	// Abandon the leader before it publishes a single chunk: the
	// follower consumed nothing, so it must fall back, not fail.
	leader.Close()
	select {
	case res := <-done:
		if res != nil && res.CacheInfo.SharedExec {
			t.Error("fallback result still marked SharedExec")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower never completed after leader abandon")
	}
	if st := sys.ShareStats(); st.Fallbacks != 1 {
		t.Fatalf("share counters = %+v, want 1 fallback", st)
	}
}

// TestStreamBoundedMemory is the memory acceptance test: a result too
// big for the per-query budget fails the materializing path with a
// typed budget error, and streams to completion on RunStream under the
// same budget.
func TestStreamBoundedMemory(t *testing.T) {
	ds := NewDataset()
	for i := 0; i < 300; i++ {
		for j := 0; j < 300; j++ {
			ds.Add(fmt.Sprintf("a%d", i), "n", fmt.Sprintf("b%d", j))
		}
	}
	// One node makes the root scan dedup-free, so the stream retains
	// one chunk, no seen-set.
	sys, err := Open(ds, WithNodes(1), WithMemoryBudget(1<<21, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	const src = `SELECT * WHERE { ?a <n> ?b . }`
	if _, err := sys.Run(context.Background(), src); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("materializing Run under budget = %v, want budget trip", err)
	}
	rows, err := sys.RunStream(context.Background(), src)
	if err != nil {
		t.Fatalf("RunStream under the same budget: %v", err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("stream failed: %v", err)
	}
	if n != 300*300 {
		t.Fatalf("streamed %d rows, want %d", n, 300*300)
	}
}

// TestStreamLimit: WithLimit caps both paths on the same prefix of the
// deterministic emission order.
func TestStreamLimit(t *testing.T) {
	ds := NewDataset()
	for i := 0; i < 100; i++ {
		ds.Add(fmt.Sprintf("s%02d", i), "p", "o")
	}
	sys, err := Open(ds, WithNodes(4))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	const src = `SELECT * WHERE { ?s <p> ?o . }`
	res, err := sys.Run(context.Background(), src, WithLimit(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 || res.RowCount() != 7 {
		t.Fatalf("limited Run returned %d rows (RowCount %d), want 7", len(res.Rows), res.RowCount())
	}
	rows, err := sys.RunStream(context.Background(), src, WithLimit(7))
	if err != nil {
		t.Fatal(err)
	}
	got := drainSorted(t, rows)
	if !equalRowSets(got, res.Rows) {
		t.Fatal("limited stream and limited Run disagree")
	}
	sres := rows.Result()
	if sres.Returned != 7 {
		t.Fatalf("stream Returned = %d, want 7", sres.Returned)
	}
	if s := res.String(); !strings.HasPrefix(s, "7 rows") {
		t.Fatalf("ExecResult.String() = %q, want \"7 rows\" prefix", s)
	}
	// A streamed result has no materialized Rows; String must still
	// report the delivered count, not 0.
	if s := sres.String(); !strings.HasPrefix(s, "7 rows") {
		t.Fatalf("streamed ExecResult.String() = %q, want \"7 rows\" prefix", s)
	}
}

// TestStreamCancelMidway: canceling the context mid-stream surfaces an
// error on the cursor and still finalizes the call.
func TestStreamCancelMidway(t *testing.T) {
	ds := NewDataset()
	for i := 0; i < 3000; i++ {
		ds.Add(fmt.Sprintf("s%d", i), "p", fmt.Sprintf("o%d", i))
	}
	sys, err := Open(ds, WithNodes(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := sys.RunStream(ctx, `SELECT * WHERE { ?s <p> ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	cancel()
	for rows.Next() {
	}
	if rows.Err() == nil {
		t.Fatal("canceled stream ended cleanly")
	}
	if err := rows.Close(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close = %v, want context.Canceled", err)
	}
}

// TestStreamScan: Scan decodes the current row through the dictionary.
func TestStreamScan(t *testing.T) {
	ds := NewDataset()
	ds.Add("alice", "knows", "bob")
	sys, err := Open(ds, WithNodes(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	rows, err := sys.RunStream(context.Background(), `SELECT ?a ?b WHERE { ?a <knows> ?b . }`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	dst := make([]string, len(rows.Vars()))
	if err := rows.Scan(dst); err == nil {
		t.Fatal("Scan before Next must fail")
	}
	if !rows.Next() {
		t.Fatalf("no rows: %v", rows.Err())
	}
	if err := rows.Scan(dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != "alice" || dst[1] != "bob" {
		t.Fatalf("Scan = %v", dst)
	}
}

// TestStreamSlowLogRowCount: satellite 2 — a streamed call's slow-log
// entry reports the delivered row count, not a materialized length.
func TestStreamSlowLogRowCount(t *testing.T) {
	ds := NewDataset()
	for i := 0; i < 20; i++ {
		ds.Add(fmt.Sprintf("s%d", i), "p", "o")
	}
	sys, err := Open(ds, WithNodes(2),
		WithObservability(WithSlowQueryLog(8, 0))) // threshold 0: log everything
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	rows, err := sys.RunStream(context.Background(), `SELECT * WHERE { ?s <p> ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	entries := sys.SlowQueries()
	if len(entries) == 0 {
		t.Fatal("no slow-log entry for the streamed call")
	}
	if entries[0].Rows != n {
		t.Fatalf("slow-log Rows = %d, streamed %d", entries[0].Rows, n)
	}
	if !strings.Contains(entries[0].String(), fmt.Sprintf("rows=%d", n)) {
		t.Fatalf("slow-log line %q misses rows=%d", entries[0].String(), n)
	}
}
