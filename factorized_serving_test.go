package sparqlopt

import (
	"context"
	"strings"
	"testing"

	"sparqlopt/internal/workload/lubm"
)

// TestFactorizedServingPath threads a factorized execution through the
// full serving stack: with an aggressive fanout gate the root join
// runs on the answer-graph path, and the representation must surface
// everywhere an operator would look — the ExecResult, the slow-query
// log and the trace — while the rows stay bit-identical to a plain
// system's.
func TestFactorizedServingPath(t *testing.T) {
	ds := lubm.Generate(lubm.Config{Universities: 1, Seed: 1, Compact: true})
	plain, err := Open(ds, WithNodes(4), WithFactorization(0))
	if err != nil {
		t.Fatal(err)
	}
	// Gate 0.01: any root join whose estimated output exceeds 1% of its
	// summed inputs factorizes — i.e. effectively always.
	fact, err := Open(ds, WithNodes(4), WithFactorization(0.01),
		WithObservability(WithSlowQueryLog(64, 0)))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	src := lubm.QueryText("L2")

	want, err := plain.Run(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	if want.Factorized {
		t.Fatal("factorization ran with the gate disabled")
	}

	var tr *Trace
	got, err := fact.Run(ctx, src, WithTraceSink(func(x *Trace) { tr = x }))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Factorized {
		t.Fatalf("gate 0.01 did not choose factorization for L2:\n%s", got.String())
	}
	if got.FlatRowCount() < int64(len(got.Rows)) {
		t.Errorf("flat count %d below distinct rows %d", got.FlatRowCount(), len(got.Rows))
	}
	if got.FlatRowCount() != want.FlatRowCount() {
		t.Errorf("factorized flat count %d, flat path counted %d", got.FlatRowCount(), want.FlatRowCount())
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("factorized returned %d rows, flat %d", len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		for j := range got.Rows[i] {
			if got.Rows[i][j] != want.Rows[i][j] {
				t.Fatalf("row %d differs between representations", i)
			}
		}
	}
	if !strings.Contains(got.String(), "factorized") {
		t.Errorf("ExecResult string does not mention factorization: %s", got.String())
	}

	// The root operator's span must carry the representation attrs.
	var span *Span
	var walk func(s *Span)
	walk = func(s *Span) {
		if strings.HasPrefix(s.Name, "op:") {
			if _, ok := s.Attr("factorized"); ok {
				span = s
			}
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(tr.Root)
	if span == nil {
		t.Fatalf("no operator span marked factorized:\n%s", tr.Format())
	}
	for _, attr := range []string{"flattened_rows", "deferred_fanout"} {
		if _, ok := span.Attr(attr); !ok {
			t.Errorf("span %s lacks %s", span.Name, attr)
		}
	}

	// And the slow-query log records the representation per entry.
	entries := fact.SlowQueries()
	if len(entries) == 0 {
		t.Fatal("slow-query log empty")
	}
	e := entries[len(entries)-1]
	if !e.Factorized {
		t.Errorf("slow-log entry not marked factorized: %s", e.String())
	}
	if e.FlatRows != got.FlatRowCount() {
		t.Errorf("slow-log flat rows %d, result counted %d", e.FlatRows, got.FlatRowCount())
	}
	if !strings.Contains(e.String(), "factorized") {
		t.Errorf("slow-log string does not mention factorization: %s", e.String())
	}
}
