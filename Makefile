# Development targets. `make check` is the full gate used before
# merging: vet, build, the race-instrumented test suite, a doubled
# run of the parallel-determinism tests (the most schedule-sensitive
# ones, covering both the optimizer and the execution engine), and a
# single-iteration pass over the execution benchmarks so they cannot
# bit-rot. Benchmarks that are too slow under the race detector skip
# themselves (see internal/race).

GO ?= go

.PHONY: all vet build test race determinism bench bench-smoke check

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The determinism tests compare parallel plan costs / search-space
# counters against the sequential enumerator, and parallel execution
# results / metrics against the sequential engine; -count=2 reruns
# them to shake out schedule-dependent flakiness.
determinism:
	$(GO) test -run TestDeterminism -race -count=2 ./internal/opt/... ./internal/engine/...

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# One iteration of the execution benchmarks: catches compile or
# runtime breakage in the bench harness without measuring anything.
bench-smoke:
	$(GO) test -run='^$$' -bench=BenchmarkExecute -benchtime=1x .

check: vet build race determinism bench-smoke
