# Development targets. `make check` is the full gate used before
# merging: vet, build, the race-instrumented test suite, and a doubled
# run of the parallel-determinism tests (the most schedule-sensitive
# ones). Benchmarks that are too slow under the race detector skip
# themselves (see internal/race).

GO ?= go

.PHONY: all vet build test race determinism bench check

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The determinism tests compare parallel plan costs and search-space
# counters against the sequential enumerator; -count=2 reruns them to
# shake out schedule-dependent flakiness.
determinism:
	$(GO) test -run TestDeterminism -race -count=2 ./internal/opt/...

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

check: vet build race determinism
