# Development targets. `make check` is the full gate used before
# merging: vet, build, the race-instrumented test suite, a doubled
# run of the parallel-determinism tests (the most schedule-sensitive
# ones, covering both the optimizer and the execution engine), and a
# single-iteration pass over the execution benchmarks so they cannot
# bit-rot. Benchmarks that are too slow under the race detector skip
# themselves (see internal/race).

GO ?= go

.PHONY: all lint vet build test race determinism obs chaos bench bench-smoke serve-smoke fuzz-smoke check

all: check

# lint fails on any file gofmt would rewrite (listing the offenders)
# and runs vet. Kept dependency-free: both tools ship with the Go
# toolchain.
lint:
	@files=$$(gofmt -l .); if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi
	$(GO) vet ./...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The determinism tests compare parallel plan costs / search-space
# counters against the sequential enumerator, and parallel execution
# results / metrics against the sequential engine; -count=2 reruns
# them to shake out schedule-dependent flakiness.
determinism:
	$(GO) test -run TestDeterminism -race -count=2 ./internal/opt/... ./internal/engine/...

# The observability layer's own gate: vet plus a doubled, race-
# instrumented run of the registry/trace/slow-log suites and the
# serving-path trace tests — the lock-striped registry and the
# concurrent slow-query ring are the most schedule-sensitive new code.
obs:
	$(GO) vet ./internal/obs
	$(GO) test -race -count=2 ./internal/obs
	$(GO) test -race -run 'TestObservability|TestTraceTree|TestCancellationReportsPhase|TestPositionalAlgorithm' .

# The resilience gate: a doubled, race-instrumented run of the chaos
# suite (64 goroutines injecting deterministic faults into a shared
# System) plus a short sweep over extra fault-injection seeds — for
# the serving mix, for the mixed read/write pass that panics the
# write-apply path (rdf/snapshot), and for the node-failover storm
# that kills nodes under cached reads and recovery migrations. The
# suites read CHAOS_SEED, so a failing seed reproduces with
# `CHAOS_SEED=n go test -run TestChaosServing -race .` (or
# TestChaosIngest / TestChaosFailover).
chaos:
	$(GO) test -run 'TestChaos' -race -count=2 .
	for seed in 2 3 7; do \
		CHAOS_SEED=$$seed $(GO) test -run 'TestChaosServing|TestChaosIngest|TestChaosFailover' -race . || exit 1; \
	done

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# One iteration of the execution benchmarks plus a quick pass of the
# adaptive-repartitioning and serving-under-ingest experiments:
# catches compile or runtime breakage in the bench harnesses without
# measuring anything. Both passes also re-check their bit-identical-
# results invariants on every gate run (JSON artifacts suppressed).
bench-smoke:
	$(GO) test -run='^$$' -bench=BenchmarkExecute -benchtime=1x .
	$(GO) run ./cmd/benchrunner -experiment adaptive -quick -adaptivejson ''
	$(GO) run ./cmd/benchrunner -experiment ingest -quick -ingestjson ''
	$(GO) run ./cmd/benchrunner -experiment failover -quick -failoverjson ''

# The HTTP serving gate: a race-instrumented pass over the SPARQL
# protocol conformance suite, then the smoke test — one server on a
# random port serving a mixed workload (cache hits and misses, an
# overload burst, a mid-stream client disconnect), a clean shutdown
# and a zero-goroutine-leak check — plus a quick pass of the serving
# benchmark harness (JSON artifact suppressed).
serve-smoke:
	$(GO) test -race -count=1 ./internal/httpd
	$(GO) test -race -run TestServeSmoke -count=2 ./internal/httpd
	$(GO) run ./cmd/benchrunner -experiment serving -quick -servingjson ''

# Short fuzzing passes over the parser and the plan-cache
# fingerprinter, seeded from the checked-in corpora. 5 s each: enough
# to replay the corpus and mutate a little, fast enough for the gate.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzParse$$' -fuzztime=5s ./internal/sparql
	$(GO) test -run='^$$' -fuzz='^FuzzCanonicalize$$' -fuzztime=5s ./internal/querygraph

check: lint build race determinism obs chaos bench-smoke serve-smoke fuzz-smoke
