package sparqlopt

import (
	"context"
	"strings"
	"sync"
	"testing"

	"sparqlopt/internal/opt"
	"sparqlopt/internal/sparql"
	"sparqlopt/internal/stats"
)

func mustEstimator(tb testing.TB, q *sparql.Query, s *stats.Stats) *stats.Estimator {
	tb.Helper()
	est, err := stats.NewEstimator(q, s)
	if err != nil {
		tb.Fatal(err)
	}
	return est
}

func tinyDataset() *Dataset {
	ds := NewDataset()
	ds.Add("http://alice", "http://knows", "http://bob")
	ds.Add("http://bob", "http://knows", "http://carol")
	ds.Add("http://alice", "http://worksFor", "http://acme")
	ds.Add("http://bob", "http://worksFor", "http://acme")
	ds.Add("http://acme", "http://inCity", "http://berlin")
	return ds
}

func TestOpenAndRun(t *testing.T) {
	sys, err := Open(tinyDataset(), WithNodes(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(context.Background(),
		`SELECT ?x ?y WHERE { ?x <http://knows> ?y . ?y <http://worksFor> ?o . }`, WithAlgorithm(TDAuto))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(res.Rows))
	}
	if sys.Term(res.Rows[0][0]) != "http://alice" {
		t.Errorf("x = %s", sys.Term(res.Rows[0][0]))
	}
	formatted := sys.FormatResult(res)
	if !strings.Contains(formatted, "?x\t?y") || !strings.Contains(formatted, "http://alice") {
		t.Errorf("FormatResult = %q", formatted)
	}
}

func TestRunMatchesReferenceForEveryAlgorithm(t *testing.T) {
	ds := tinyDataset()
	src := `SELECT * WHERE { ?x <http://knows> ?y . ?x <http://worksFor> ?o . ?o <http://inCity> ?c . }`
	q, err := ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Reference(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"hash-so", "2f", "path-bmc", "un-1hop"} {
		m, err := PartitionMethod(name)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := Open(ds, WithMethod(m), WithNodes(2))
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range []Algorithm{TDCMD, TDCMDP, HGRTDCMD, TDAuto} {
			got, err := sys.Run(context.Background(), src, WithAlgorithm(algo))
			if err != nil {
				t.Fatalf("%s/%v: %v", name, algo, err)
			}
			if len(got.Rows) != len(want.Rows) {
				t.Errorf("%s/%v: %d rows, want %d", name, algo, len(got.Rows), len(want.Rows))
			}
		}
	}
}

func TestOptimizeExposesCounters(t *testing.T) {
	sys, err := Open(tinyDataset())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Optimize(context.Background(),
		`SELECT * WHERE { ?x <http://knows> ?y . ?y <http://knows> ?z . }`, WithAlgorithm(TDCMD))
	if err != nil {
		t.Fatal(err)
	}
	if res.Counter.CMDs == 0 || res.Plan == nil {
		t.Errorf("counters not populated: %+v", res.Counter)
	}
	if res.Plan.Validate() != nil {
		t.Error("invalid plan from facade")
	}
}

func TestOpenRejectsBadNodes(t *testing.T) {
	if _, err := Open(tinyDataset(), WithNodes(-1)); err == nil {
		t.Error("negative node count accepted")
	}
}

func TestParseQueryError(t *testing.T) {
	if _, err := ParseQuery("garbage"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestReadWriteNTriples(t *testing.T) {
	var sb strings.Builder
	if err := WriteNTriples(&sb, tinyDataset()); err != nil {
		t.Fatal(err)
	}
	ds, err := ReadNTriples(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != tinyDataset().Len() {
		t.Errorf("round trip lost triples: %d", ds.Len())
	}
}

func TestReplicationFactor(t *testing.T) {
	sys, err := Open(tinyDataset(), WithNodes(4))
	if err != nil {
		t.Fatal(err)
	}
	if rf := sys.ReplicationFactor(); rf < 1 || rf > 2.001 {
		t.Errorf("hash-so replication factor = %v, want within [1, 2]", rf)
	}
	if sys.Method().Name() != "Hash-SO" {
		t.Errorf("default method = %s", sys.Method().Name())
	}
}

func TestWithCostParams(t *testing.T) {
	p := DefaultCostParams()
	p.BetaR = 99 // make repartition prohibitively expensive
	sys, err := Open(tinyDataset(), WithCostParams(p), WithNodes(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Optimize(context.Background(),
		`SELECT * WHERE { ?x <http://knows> ?y . ?y <http://knows> ?z . }`, WithAlgorithm(TDCMD))
	if err != nil {
		t.Fatal(err)
	}
	var sawRepartition bool
	var walk func(n *Plan)
	walk = func(n *Plan) {
		if n.Alg.String() == "⋈R" {
			sawRepartition = true
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	walk(res.Plan)
	if sawRepartition {
		t.Error("repartition join chosen despite prohibitive cost")
	}
	_ = opt.TDCMD // facade aliases the internal enum
}

func TestConcurrentQueries(t *testing.T) {
	// A System must support concurrent Optimize/Execute callers (the
	// engine's stores are read-only after Open).
	sys, err := Open(tinyDataset(), WithNodes(3))
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`SELECT * WHERE { ?x <http://knows> ?y . }`,
		`SELECT * WHERE { ?x <http://knows> ?y . ?y <http://worksFor> ?o . }`,
		`SELECT * WHERE { ?x <http://worksFor> ?o . ?o <http://inCity> ?c . }`,
	}
	var wg sync.WaitGroup
	errs := make(chan error, 30)
	for i := 0; i < 10; i++ {
		for _, q := range queries {
			wg.Add(1)
			go func(q string) {
				defer wg.Done()
				if _, err := sys.Run(context.Background(), q, WithAlgorithm(TDAuto)); err != nil {
					errs <- err
				}
			}(q)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
